package yarn

import (
	"testing"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/stats"
)

// testRM builds an RM over a star network with a capture attached.
func testRM(t *testing.T, workers int, cfg Config) (*RM, *netsim.Network, *pcap.Capture) {
	t.Helper()
	topo, err := netsim.Star(workers+1, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	c := pcap.NewCapture()
	net.AddTap(c)
	hosts := topo.Hosts()
	rm, err := New(net, hosts[0], hosts[1:], cfg, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	return rm, net, c
}

// drainUntil steps the engine until cond holds or the queue empties.
func drainUntil(t *testing.T, eng *sim.Engine, cond func() bool) {
	t.Helper()
	for !cond() {
		if !eng.Step() {
			t.Fatal("queue drained before condition held")
		}
	}
}

func TestAMAllocationAndFinish(t *testing.T) {
	rm, net, _ := testRM(t, 4, Config{SlotsPerNode: 2})
	rm.Start()
	var am *App
	rm.Submit(net.Topology().Hosts()[0], func(a *App) { am = a })
	drainUntil(t, net.Engine(), func() bool { return am != nil })
	if am.AMHost() == net.Topology().Hosts()[0] {
		t.Error("AM placed on the master (not a NodeManager)")
	}
	am.Finish()
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if rm.Assigned != 1 {
		t.Errorf("assigned = %d, want 1 (the AM)", rm.Assigned)
	}
}

func TestSlotsBoundConcurrency(t *testing.T) {
	rm, net, _ := testRM(t, 2, Config{SlotsPerNode: 1}) // 2 slots total
	rm.Start()
	running, peak, granted := 0, 0, 0
	var app *App
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		app = a
		for i := 0; i < 4; i++ {
			a.RequestContainer(PriorityMap, nil, func(c *Container) {
				granted++
				running++
				if running > peak {
					peak = running
				}
				// Hold the container for 2 s of simulated time.
				net.Engine().After(2_000_000_000, func() {
					running--
					c.Release()
				})
			})
		}
	})
	drainUntil(t, net.Engine(), func() bool { return granted == 4 })
	// AM holds one slot, so at most 1 task container runs at a time.
	if peak > 1 {
		t.Errorf("peak concurrent tasks = %d, want <= 1 (AM holds a slot)", peak)
	}
	app.Finish()
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestLocalityPreferenceHonoured(t *testing.T) {
	rm, net, _ := testRM(t, 4, Config{SlotsPerNode: 4, LocalityWait: sim.Time(60_000_000_000)})
	rm.Start()
	workers := net.Topology().Hosts()[1:]
	want := workers[2]
	var got netsim.NodeID = -1
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		a.RequestContainer(PriorityMap, []netsim.NodeID{want}, func(c *Container) { got = c.Host() })
	})
	drainUntil(t, net.Engine(), func() bool { return got >= 0 })
	if got != want {
		t.Errorf("container on %d, want preferred %d", got, want)
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if rm.LocalAssigned != 1 {
		t.Errorf("local assignments = %d, want 1", rm.LocalAssigned)
	}
}

func TestLocalityWaitTimeout(t *testing.T) {
	// Prefer a host whose only slot is occupied forever; after
	// LocalityWait the request must fall through to another host.
	rm, net, _ := testRM(t, 2, Config{SlotsPerNode: 1, LocalityWait: sim.Time(2_000_000_000)})
	rm.Start()
	workers := net.Topology().Hosts()[1:]
	var amHost, got netsim.NodeID = -1, -1
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		amHost = a.AMHost()
		// Prefer the AM's own host — its single slot is taken by the AM.
		a.RequestContainer(PriorityMap, []netsim.NodeID{amHost}, func(c *Container) { got = c.Host() })
	})
	drainUntil(t, net.Engine(), func() bool { return got >= 0 })
	if got == amHost {
		t.Error("request was satisfied on the occupied preferred host")
	}
	found := false
	for _, w := range workers {
		if got == w {
			found = true
		}
	}
	if !found {
		t.Errorf("container landed on unknown host %d", got)
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestPriorityOrdering(t *testing.T) {
	// One free slot; a reduce-priority request queued BEFORE a
	// map-priority request must still be granted after it.
	rm, net, _ := testRM(t, 1, Config{SlotsPerNode: 3})
	rm.Start()
	var order []string
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		// Fill one slot (AM) + leave 2: grant order within one heartbeat
		// scan must be map before reduce even though reduce enqueued
		// first.
		a.RequestContainer(PriorityReduce, nil, func(*Container) { order = append(order, "reduce") })
		a.RequestContainer(PriorityMap, nil, func(*Container) { order = append(order, "map") })
	})
	drainUntil(t, net.Engine(), func() bool { return len(order) == 2 })
	if order[0] != "map" {
		t.Errorf("grant order = %v, want map first", order)
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestHeartbeatControlTraffic(t *testing.T) {
	rm, net, c := testRM(t, 4, Config{NMHeartbeat: sim.Time(1_000_000_000)})
	rm.Start()
	if _, err := net.Engine().Run(sim.Time(10_500_000_000)); err != nil {
		t.Fatal(err)
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	ds := flows.NewDataset(c.Truth())
	n := ds.Count(flows.PhaseControl)
	// 4 NMs × ~10 beats, jittered start: expect ≈40.
	if n < 30 || n > 50 {
		t.Errorf("NM heartbeat flows = %d, want ≈40", n)
	}
	// All heartbeats target the resource-tracker port.
	for i, r := range ds.Records {
		if ds.Phase(i) == flows.PhaseControl && r.Key.DstPort != flows.PortRMTracker {
			t.Errorf("control flow to port %d, want %d", r.Key.DstPort, flows.PortRMTracker)
		}
	}
}

func TestNewValidation(t *testing.T) {
	topo, err := netsim.Star(2, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(sim.New(), topo, netsim.Config{})
	if _, err := New(net, topo.Hosts()[0], nil, Config{}, stats.NewRNG(1)); err == nil {
		t.Error("RM with no workers accepted")
	}
}

func TestTotalSlots(t *testing.T) {
	rm, _, _ := testRM(t, 4, Config{SlotsPerNode: 3})
	if rm.TotalSlots() != 12 {
		t.Errorf("total slots = %d, want 12", rm.TotalSlots())
	}
}
