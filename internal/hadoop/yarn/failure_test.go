package yarn

import (
	"errors"
	"testing"

	"keddah/internal/netsim"
	"keddah/internal/sim"
)

func TestFailNodeLosesRunningContainers(t *testing.T) {
	rm, net, _ := testRM(t, 3, Config{SlotsPerNode: 2})
	rm.Start()
	var held []*Container
	lostCalls := 0
	var amHost netsim.NodeID = -1
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		amHost = a.AMHost()
		for i := 0; i < 3; i++ {
			a.RequestContainer(PriorityMap, nil, func(c *Container) {
				c.OnLost(func() { lostCalls++ })
				held = append(held, c)
			})
		}
	})
	drainUntil(t, net.Engine(), func() bool { return len(held) == 3 })

	// Pick a victim that is not the AM host so the expected loss count
	// is exactly the task containers there.
	var victim netsim.NodeID = -1
	for _, c := range held {
		if c.Host() != amHost {
			victim = c.Host()
			break
		}
	}
	if victim < 0 {
		t.Fatal("all task containers landed on the AM host")
	}
	victimCount := 0
	for _, c := range held {
		if c.Host() == victim {
			victimCount++
		}
	}
	if err := rm.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if lostCalls != victimCount {
		t.Errorf("loss handlers fired %d times, want %d", lostCalls, victimCount)
	}
	for _, c := range held {
		if c.Host() == victim && !c.Lost() {
			t.Error("container on failed host not marked lost")
		}
		if c.Host() != victim && c.Lost() {
			t.Error("container on healthy host marked lost")
		}
	}
	if rm.LostContainers != int64(victimCount) {
		t.Errorf("LostContainers = %d, want %d", rm.LostContainers, victimCount)
	}
	// Releasing a lost container is a no-op (no double-free).
	held[0].Release()
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeExcludedFromScheduling(t *testing.T) {
	rm, net, _ := testRM(t, 2, Config{SlotsPerNode: 4})
	rm.Start()
	workers := net.Topology().Hosts()[1:]
	victim := workers[0]
	if err := rm.FailNode(victim); err != nil {
		t.Fatal(err)
	}
	if rm.TotalSlots() != 4 {
		t.Errorf("total slots after failure = %d, want 4", rm.TotalSlots())
	}
	var hosts []netsim.NodeID
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		for i := 0; i < 3; i++ {
			a.RequestContainer(PriorityMap, nil, func(c *Container) {
				hosts = append(hosts, c.Host())
			})
		}
	})
	drainUntil(t, net.Engine(), func() bool { return len(hosts) == 3 })
	for _, h := range hosts {
		if h == victim {
			t.Error("container scheduled on dead node")
		}
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFailNodeDuringLaunchRequeues(t *testing.T) {
	// Fail the host while a container is in its launch delay: the
	// request must be transparently re-queued and delivered elsewhere.
	rm, net, _ := testRM(t, 3, Config{SlotsPerNode: 1, ContainerLaunchDelay: sim.Time(5_000_000_000)})
	rm.Start()
	var got netsim.NodeID = -1
	var amReady bool
	rm.Submit(net.Topology().Hosts()[0], func(a *App) {
		amReady = true
		a.RequestContainer(PriorityMap, nil, func(c *Container) { got = c.Host() })
	})
	drainUntil(t, net.Engine(), func() bool { return amReady })
	// Let the task container be granted (slot used) but not delivered.
	if _, err := net.Engine().Run(net.Engine().Now() + sim.Time(2_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if got >= 0 {
		t.Fatal("container delivered too early for this test")
	}
	// White-box: find the NodeManager holding the launching container.
	var taskHost netsim.NodeID = -1
	for _, nm := range rm.nms {
		if nm.used > 0 && len(nm.containers) > 0 && !nm.containers[0].delivered {
			taskHost = nm.host
			break
		}
	}
	if taskHost < 0 {
		t.Fatal("no launching container found")
	}
	if err := rm.FailNode(taskHost); err != nil {
		t.Fatal(err)
	}
	drainUntil(t, net.Engine(), func() bool { return got >= 0 })
	if got == taskHost {
		t.Error("re-queued request delivered on the dead host")
	}
	rm.Shutdown()
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestFailUnknownNode(t *testing.T) {
	rm, net, _ := testRM(t, 2, Config{})
	if err := rm.FailNode(net.Topology().Hosts()[0]); !errors.Is(err, ErrUnknownNode) {
		t.Errorf("failing the master: err = %v, want ErrUnknownNode", err)
	}
	// Idempotent on a real worker.
	w := net.Topology().Hosts()[1]
	if err := rm.FailNode(w); err != nil {
		t.Fatal(err)
	}
	if err := rm.FailNode(w); err != nil {
		t.Errorf("second failure: %v", err)
	}
}
