package hadoop

import (
	"testing"

	"keddah/internal/flows"
	"keddah/internal/hadoop/mapreduce"
	"keddah/internal/pcap"
	"keddah/internal/sim"
)

// runSortWithFailure runs a sort job and fails worker w at the given
// simulated time; returns the job result and the capture.
func runSortWithFailure(t *testing.T, failAt sim.Time) (mapreduce.Result, *pcap.Capture, *Cluster) {
	t.Helper()
	c, capt := newTestCluster(t, 21)
	var result mapreduce.Result
	err := c.Ingest("/data/in", 1<<30, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name: "sortf", InputPath: "/data/in", OutputPath: "/out",
			NumReducers: 4, MapSelectivity: 1, ReduceSelectivity: 1,
			MapCostSecPerMB: 0.05, // slow maps so the failure lands mid-job
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if failAt > 0 {
		victim := c.Workers()[3]
		if err := c.FailWorker(victim, failAt); err != nil {
			t.Fatalf("fail worker: %v", err)
		}
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return result, capt, c
}

func TestWorkerFailureJobStillCompletes(t *testing.T) {
	baseline, _, _ := runSortWithFailure(t, 0)
	failed, capt, cluster := runSortWithFailure(t, sim.Time(15_000_000_000))

	if failed.Finished == 0 || failed.Failed {
		t.Fatalf("job did not complete after worker failure: %+v", failed)
	}
	if failed.OutputBytes <= 0 {
		t.Error("no output committed after failure")
	}
	// Failure costs correctness nothing; durations may wobble a little
	// with placement jitter but must not collapse.
	if failed.Duration() < baseline.Duration()*8/10 {
		t.Errorf("failure run (%v) implausibly faster than baseline (%v)",
			failed.Duration(), baseline.Duration())
	}
	// Re-replication traffic must appear, classified as HDFS write.
	var reReplBytes int64
	for _, r := range capt.Truth() {
		if r.Label == "hdfs/reReplication" {
			reReplBytes += r.Bytes
			if flows.Classify(r) != flows.PhaseHDFSWrite {
				t.Errorf("re-replication flow classified as %s", flows.Classify(r))
			}
		}
	}
	if reReplBytes == 0 {
		t.Error("no re-replication traffic captured")
	}
	if cluster.FS.ReReplicatedBlocks == 0 {
		t.Error("FS recorded no re-replicated blocks")
	}
	if cluster.FS.LostBlocks != 0 {
		t.Errorf("lost %d blocks at replication 3 with one failure", cluster.FS.LostBlocks)
	}
}

func TestWorkerFailureReexecutesTasks(t *testing.T) {
	failed, _, cluster := runSortWithFailure(t, sim.Time(12_000_000_000))
	if failed.ReexecutedMaps == 0 && failed.ReexecutedReducers == 0 &&
		cluster.RM.LostContainers == 0 {
		t.Error("mid-job failure lost no containers and re-executed nothing")
	}
	if !cluster.RM.NodeAlive(cluster.Workers()[0]) {
		t.Error("unaffected node reported dead")
	}
	if cluster.RM.NodeAlive(cluster.Workers()[3]) {
		t.Error("failed node reported alive")
	}
}

func TestFailureBeforeJobOnlyReReplicates(t *testing.T) {
	// Failing a node after the ingest finished (≈9 s for 1 GiB) but
	// before heavy map progress: the namenode restores replication and
	// the job completes on the survivors.
	result, capt, cluster := runSortWithFailure(t, sim.Time(10_500_000_000))
	if result.Finished == 0 || result.Failed {
		t.Fatalf("job did not complete: %+v", result)
	}
	if cluster.FS.ReReplicatedBlocks == 0 {
		t.Error("no blocks re-replicated")
	}
	// All re-replication flows avoid the dead node.
	dead := cluster.Workers()[3]
	deadAddr := pcap.HostAddr(int(dead))
	for _, r := range capt.Truth() {
		if r.Label == "hdfs/reReplication" && r.Key.Dst == deadAddr {
			t.Error("re-replication targeted the dead node")
		}
	}
}

func TestFailMasterRejected(t *testing.T) {
	c, _ := newTestCluster(t, 5)
	if err := c.FailWorker(c.Master(), sim.Time(1)); err == nil {
		t.Error("failing the master was accepted")
	}
}

func TestDoubleFailureTolerated(t *testing.T) {
	// Two failures with replication 3 still lose nothing and the job
	// completes.
	c, _ := newTestCluster(t, 33)
	var result mapreduce.Result
	err := c.Ingest("/data/in", 512<<20, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name: "j", InputPath: "/data/in", OutputPath: "/out",
			NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
			MapCostSecPerMB: 0.05,
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := c.FailWorker(c.Workers()[1], sim.Time(8_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := c.FailWorker(c.Workers()[5], sim.Time(20_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if result.Finished == 0 || result.Failed {
		t.Fatalf("job did not survive two failures: %+v", result)
	}
	if c.FS.LostBlocks != 0 {
		t.Errorf("lost %d blocks", c.FS.LostBlocks)
	}
}
