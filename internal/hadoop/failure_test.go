package hadoop

import (
	"testing"

	"keddah/internal/flows"
	"keddah/internal/hadoop/mapreduce"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
)

// runSortWithFailure runs a sort job and fails worker w at the given
// simulated time; returns the job result and the capture.
func runSortWithFailure(t *testing.T, failAt sim.Time) (mapreduce.Result, *pcap.Capture, *Cluster) {
	t.Helper()
	c, capt := newTestCluster(t, 21)
	var result mapreduce.Result
	err := c.Ingest("/data/in", 1<<30, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name: "sortf", InputPath: "/data/in", OutputPath: "/out",
			NumReducers: 4, MapSelectivity: 1, ReduceSelectivity: 1,
			MapCostSecPerMB: 0.05, // slow maps so the failure lands mid-job
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if failAt > 0 {
		victim := c.Workers()[3]
		if err := c.FailWorker(victim, failAt); err != nil {
			t.Fatalf("fail worker: %v", err)
		}
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return result, capt, c
}

func TestWorkerFailureJobStillCompletes(t *testing.T) {
	baseline, _, _ := runSortWithFailure(t, 0)
	failed, capt, cluster := runSortWithFailure(t, sim.Time(15_000_000_000))

	if failed.Finished == 0 || failed.Failed {
		t.Fatalf("job did not complete after worker failure: %+v", failed)
	}
	if failed.OutputBytes <= 0 {
		t.Error("no output committed after failure")
	}
	// Failure costs correctness nothing; durations may wobble a little
	// with placement jitter but must not collapse.
	if failed.Duration() < baseline.Duration()*8/10 {
		t.Errorf("failure run (%v) implausibly faster than baseline (%v)",
			failed.Duration(), baseline.Duration())
	}
	// Re-replication traffic must appear, classified as HDFS write.
	var reReplBytes int64
	for _, r := range capt.Truth() {
		if r.Label == "hdfs/reReplication" {
			reReplBytes += r.Bytes
			if flows.Classify(r) != flows.PhaseHDFSWrite {
				t.Errorf("re-replication flow classified as %s", flows.Classify(r))
			}
		}
	}
	if reReplBytes == 0 {
		t.Error("no re-replication traffic captured")
	}
	if cluster.FS.ReReplicatedBlocks == 0 {
		t.Error("FS recorded no re-replicated blocks")
	}
	if cluster.FS.LostBlocks != 0 {
		t.Errorf("lost %d blocks at replication 3 with one failure", cluster.FS.LostBlocks)
	}
}

func TestWorkerFailureReexecutesTasks(t *testing.T) {
	failed, _, cluster := runSortWithFailure(t, sim.Time(12_000_000_000))
	if failed.ReexecutedMaps == 0 && failed.ReexecutedReducers == 0 &&
		cluster.RM.LostContainers == 0 {
		t.Error("mid-job failure lost no containers and re-executed nothing")
	}
	if !cluster.RM.NodeAlive(cluster.Workers()[0]) {
		t.Error("unaffected node reported dead")
	}
	if cluster.RM.NodeAlive(cluster.Workers()[3]) {
		t.Error("failed node reported alive")
	}
}

func TestFailureBeforeJobOnlyReReplicates(t *testing.T) {
	// Failing a node after the ingest finished (≈9 s for 1 GiB) but
	// before heavy map progress: the namenode restores replication and
	// the job completes on the survivors.
	result, capt, cluster := runSortWithFailure(t, sim.Time(10_500_000_000))
	if result.Finished == 0 || result.Failed {
		t.Fatalf("job did not complete: %+v", result)
	}
	if cluster.FS.ReReplicatedBlocks == 0 {
		t.Error("no blocks re-replicated")
	}
	// All re-replication flows avoid the dead node.
	dead := cluster.Workers()[3]
	deadAddr := pcap.HostAddr(int(dead))
	for _, r := range capt.Truth() {
		if r.Label == "hdfs/reReplication" && r.Key.Dst == deadAddr {
			t.Error("re-replication targeted the dead node")
		}
	}
}

func TestFailMasterRejected(t *testing.T) {
	c, _ := newTestCluster(t, 5)
	if err := c.FailWorker(c.Master(), sim.Time(1)); err == nil {
		t.Error("failing the master was accepted")
	}
}

// TestFailureTargetEdgeCases drives FailWorker and CrashWorker through
// every rejected or degenerate target: bad hosts error at scheduling
// time (never a mid-simulation panic), while legal-but-odd schedules —
// failure before any job, the same worker failed twice — run to
// completion as clean no-ops.
func TestFailureTargetEdgeCases(t *testing.T) {
	cases := []struct {
		name     string
		schedule func(c *Cluster) error
		wantErr  bool
	}{
		{"fail master", func(c *Cluster) error {
			return c.FailWorker(c.Master(), 1)
		}, true},
		{"fail non-member host", func(c *Cluster) error {
			return c.FailWorker(netsim.NodeID(999), 1)
		}, true},
		{"fail negative host", func(c *Cluster) error {
			return c.FailWorker(netsim.NodeID(-1), 1)
		}, true},
		{"crash master", func(c *Cluster) error {
			return c.CrashWorker(c.Master(), 1, 2)
		}, true},
		{"crash non-member host", func(c *Cluster) error {
			return c.CrashWorker(netsim.NodeID(999), 1, 2)
		}, true},
		{"crash with recovery not after crash", func(c *Cluster) error {
			return c.CrashWorker(c.Workers()[0], 5, 5)
		}, true},
		{"fail before any job submitted", func(c *Cluster) error {
			return c.FailWorker(c.Workers()[0], 1)
		}, false},
		{"fail the same worker twice", func(c *Cluster) error {
			if err := c.FailWorker(c.Workers()[2], 1_000_000_000); err != nil {
				return err
			}
			return c.FailWorker(c.Workers()[2], 2_000_000_000)
		}, false},
		{"crash an already-failed worker", func(c *Cluster) error {
			if err := c.FailWorker(c.Workers()[4], 1_000_000_000); err != nil {
				return err
			}
			return c.CrashWorker(c.Workers()[4], 2_000_000_000, 3_000_000_000)
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := newTestCluster(t, 7)
			err := tc.schedule(c)
			if tc.wantErr {
				if err == nil {
					t.Fatal("bad failure target accepted")
				}
				return
			}
			if err != nil {
				t.Fatalf("schedule: %v", err)
			}
			// The scheduled events must drain without panicking even
			// though no job ever runs.
			if _, err := c.RunToIdle(); err != nil {
				t.Fatalf("run: %v", err)
			}
		})
	}
}

func TestCrashWorkerRejoins(t *testing.T) {
	// A transient crash straddling nothing in particular: the node drops
	// off, is detected dead, then re-registers and is schedulable again.
	c, capt := newTestCluster(t, 11)
	victim := c.Workers()[3]
	var result mapreduce.Result
	err := c.Ingest("/data/in", 1<<30, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name: "crashj", InputPath: "/data/in", OutputPath: "/out",
			NumReducers: 4, MapSelectivity: 1, ReduceSelectivity: 1,
			MapCostSecPerMB: 0.05,
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Crash mid-job, rejoin 12s later (past the 10s NM expiry so YARN
	// declares the node lost before it comes back).
	if err := c.CrashWorker(victim, sim.Time(12_000_000_000), sim.Time(24_000_000_000)); err != nil {
		t.Fatalf("crash worker: %v", err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if result.Finished == 0 || result.Failed {
		t.Fatalf("job did not survive transient crash: %+v", result)
	}
	if !c.RM.NodeAlive(victim) {
		t.Error("rejoined node still reported dead")
	}
	// Rejoin traffic must be captured: NM registration and a DataNode
	// block report, both recovery-classified.
	seen := map[string]bool{}
	for _, r := range capt.Truth() {
		if flows.IsRecovery(r.Label) {
			seen[r.Label] = true
		}
	}
	for _, want := range []string{"yarn/nmRegister", "hdfs/register", "hdfs/blockReport"} {
		if !seen[want] {
			t.Errorf("no %s flow captured on rejoin (saw %v)", want, seen)
		}
	}
}

func TestDoubleFailureTolerated(t *testing.T) {
	// Two failures with replication 3 still lose nothing and the job
	// completes.
	c, _ := newTestCluster(t, 33)
	var result mapreduce.Result
	err := c.Ingest("/data/in", 512<<20, func() {
		err := c.Submit(mapreduce.JobConfig{
			Name: "j", InputPath: "/data/in", OutputPath: "/out",
			NumReducers: 2, MapSelectivity: 1, ReduceSelectivity: 1,
			MapCostSecPerMB: 0.05,
		}, func(r mapreduce.Result) { result = r })
		if err != nil {
			t.Errorf("submit: %v", err)
		}
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if err := c.FailWorker(c.Workers()[1], sim.Time(8_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if err := c.FailWorker(c.Workers()[5], sim.Time(20_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RunToIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if result.Finished == 0 || result.Failed {
		t.Fatalf("job did not survive two failures: %+v", result)
	}
	if c.FS.LostBlocks != 0 {
		t.Errorf("lost %d blocks", c.FS.LostBlocks)
	}
}
