package hdfs

import (
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/netsim"
)

// CrashDataNode marks a DataNode transiently dead. Unlike FailDataNode
// (the crash-stop model E11 uses), a crash resets every data-port
// connection the node was serving — in-flight block streams are torn
// down and go through client-side recovery — and the node may later
// rejoin via RecoverDataNode. Detection still follows
// ReplicationDetectionDelay: if the node rejoins first, the NameNode
// never re-replicates its blocks.
func (fs *FS) CrashDataNode(host netsim.NodeID) error {
	if !fs.isDataNode(host) {
		return fmt.Errorf("%w: %d", ErrUnknownDataNode, host)
	}
	if fs.dead[host] {
		return nil
	}
	fs.dead[host] = true
	fs.epoch[host]++
	e := fs.epoch[host]
	fs.metrics.DNCrashes.Inc()

	// The crashed process drops its TCP connections: every data-port
	// flow it was sourcing or sinking resets.
	fs.net.AbortFlowsWhere(func(s netsim.FlowSpec) bool {
		if s.Src != host && s.Dst != host {
			return false
		}
		return s.SrcPort == flows.PortDataNodeData || s.DstPort == flows.PortDataNodeData
	})

	delay := fs.cfg.ReplicationDetectionDelay
	if delay <= 0 {
		delay = DefaultReplicationDetectionDelay
	}
	fs.eng.After(delay, func() {
		if fs.dead[host] && fs.epoch[host] == e {
			fs.reReplicateAfter(host)
		}
	})
	return nil
}

// RecoverDataNode rejoins a dead DataNode: it re-registers with the
// NameNode, uploads a full block report sized by the replicas it still
// holds, and resumes heartbeating. Recovering a live node is a no-op.
func (fs *FS) RecoverDataNode(host netsim.NodeID) error {
	if !fs.isDataNode(host) {
		return fmt.Errorf("%w: %d", ErrUnknownDataNode, host)
	}
	if !fs.dead[host] {
		return nil
	}
	delete(fs.dead, host)
	fs.epoch[host]++
	fs.metrics.DNRejoins.Inc()

	fs.control(host, fs.namenode, flows.PortNameNodeRPC, "hdfs/register")
	if host != fs.namenode {
		_, err := fs.net.StartFlow(netsim.FlowSpec{
			Src:       host,
			Dst:       fs.namenode,
			SrcPort:   ephemeralPort(fs.rng),
			DstPort:   flows.PortNameNodeRPC,
			SizeBytes: fs.blockReportSize(host),
			Label:     "hdfs/blockReport",
		})
		if err != nil {
			panic(fmt.Sprintf("hdfs: block report flow: %v", err))
		}
	}
	fs.scheduleHeartbeat(host)
	return nil
}

// isDataNode reports whether host runs a DataNode.
func (fs *FS) isDataNode(host netsim.NodeID) bool {
	for _, dn := range fs.datanodes {
		if dn == host {
			return true
		}
	}
	return false
}

// blockReportSize models the rejoin block report: a fixed RPC envelope
// plus a per-replica entry for every block the node holds.
func (fs *FS) blockReportSize(host netsim.NodeID) int64 {
	var count int64
	for _, f := range fs.files {
		for _, blk := range f.blocks {
			for _, r := range blk.Replicas {
				if r == host {
					count++
					break
				}
			}
		}
	}
	return fs.cfg.ControlBytes + 16*count
}
