package hdfs

import "fmt"

// ReplicatedBytes returns the bytes the current replica placement pins
// on disk: Σ over appended blocks of Size × replica count. Fault-free,
// this equals the bytes that crossed the wire on write-pipeline flows —
// the capture-level conservation the invariants layer asserts.
func (fs *FS) ReplicatedBytes() int64 {
	var sum int64
	for _, f := range fs.files {
		for bi := range f.blocks {
			sum += f.blocks[bi].Size * int64(len(f.blocks[bi].Replicas))
		}
	}
	return sum
}

// VerifyInvariants checks the filesystem's conservation and consistency
// properties. It is read-only with respect to the simulation (no flows,
// no events, no randomness); it only maintains a private epoch snapshot
// used to assert monotonicity between consecutive checks.
//
// Checked properties:
//   - BytesWritten equals the summed size of every appended block
//     (pipelines in flight have not been appended or charged yet).
//   - Every replica names a known DataNode and appears at most once per
//     block; no block holds more replicas than there are DataNodes.
//   - Blocks with zero replicas never exceed the LostBlocks counter.
//   - Stats counters are non-negative.
//   - Per-DataNode life epochs never move backwards.
func (fs *FS) VerifyInvariants() error {
	var sumBlockBytes, zeroReplica int64
	for _, f := range fs.files {
		for bi := range f.blocks {
			blk := &f.blocks[bi]
			sumBlockBytes += blk.Size
			if len(blk.Replicas) == 0 {
				zeroReplica++
			}
			if len(blk.Replicas) > len(fs.datanodes) {
				return fmt.Errorf("hdfs: block %d has %d replicas but only %d datanodes", blk.ID, len(blk.Replicas), len(fs.datanodes))
			}
			for ri, r := range blk.Replicas {
				if !fs.isDataNode(r) {
					return fmt.Errorf("hdfs: block %d replica on non-DataNode host %d", blk.ID, r)
				}
				for _, prev := range blk.Replicas[:ri] {
					if prev == r {
						return fmt.Errorf("hdfs: block %d holds duplicate replica on host %d", blk.ID, r)
					}
				}
			}
		}
	}
	if fs.BytesWritten != sumBlockBytes {
		return fmt.Errorf("hdfs: BytesWritten %d but appended blocks sum to %d", fs.BytesWritten, sumBlockBytes)
	}
	if zeroReplica > fs.LostBlocks {
		return fmt.Errorf("hdfs: %d blocks with zero replicas but only %d recorded lost", zeroReplica, fs.LostBlocks)
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"BytesWritten", fs.BytesWritten},
		{"BytesRead", fs.BytesRead},
		{"LocalReads", fs.LocalReads},
		{"RemoteReads", fs.RemoteReads},
		{"ReReplicatedBytes", fs.ReReplicatedBytes},
		{"ReReplicatedBlocks", fs.ReReplicatedBlocks},
		{"LostBlocks", fs.LostBlocks},
		{"UnderReplicated", fs.UnderReplicated},
		{"PipelineRecoveries", fs.PipelineRecoveries},
		{"ReadRetries", fs.ReadRetries},
	} {
		if c.v < 0 {
			return fmt.Errorf("hdfs: counter %s negative: %d", c.name, c.v)
		}
	}
	if fs.lastEpochCheck == nil {
		fs.lastEpochCheck = make(map[int64]int, len(fs.epoch))
	}
	for id, e := range fs.epoch {
		if prev, ok := fs.lastEpochCheck[int64(id)]; ok && e < prev {
			return fmt.Errorf("hdfs: DataNode %d epoch moved backwards (%d -> %d)", id, prev, e)
		}
		fs.lastEpochCheck[int64(id)] = e
	}
	return nil
}
