package hdfs

import (
	"fmt"
	"sort"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
)

// DefaultReplicationDetectionDelay is how long after a DataNode failure
// the NameNode schedules re-replication. Real HDFS waits ~10 minutes
// (dfs.namenode.heartbeat.recheck-interval); the simulator defaults to
// 5 s so failure experiments stay within job timescales — the traffic
// pattern (block-sized DN→DN copies) is identical, only the onset moves.
const DefaultReplicationDetectionDelay sim.Time = 5_000_000_000

// ErrUnknownDataNode reports a failure injected on a non-DataNode host.
var ErrUnknownDataNode = fmt.Errorf("hdfs: unknown datanode")

// FailDataNode marks a DataNode dead: it stops heartbeating, is excluded
// from placement and replica selection, and after a detection delay the
// NameNode restores the replication factor of every block it held by
// copying from surviving replicas to fresh nodes (flows on the DataNode
// data port, labelled "hdfs/reReplication").
//
// Blocks whose only replica lived on the failed node are lost; their
// count is reported via LostBlocks.
func (fs *FS) FailDataNode(host netsim.NodeID) error {
	found := false
	for _, dn := range fs.datanodes {
		if dn == host {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("%w: %d", ErrUnknownDataNode, host)
	}
	if fs.dead[host] {
		return nil
	}
	fs.dead[host] = true
	fs.epoch[host]++
	e := fs.epoch[host]

	delay := fs.cfg.ReplicationDetectionDelay
	if delay <= 0 {
		delay = DefaultReplicationDetectionDelay
	}
	// The epoch guard makes detection idempotent against rejoin: a node
	// recovered (and possibly re-crashed) since this failure was observed
	// is handled by its own, newer detection event.
	fs.eng.After(delay, func() {
		if fs.dead[host] && fs.epoch[host] == e {
			fs.reReplicateAfter(host)
		}
	})
	return nil
}

// NodeAlive reports whether a DataNode is serving.
func (fs *FS) NodeAlive(host netsim.NodeID) bool { return !fs.dead[host] }

// reReplicateAfter restores replication for every block that had a
// replica on the failed host.
func (fs *FS) reReplicateAfter(failed netsim.NodeID) {
	// Deterministic order: files by path, blocks by position.
	paths := make([]string, 0, len(fs.files))
	for p := range fs.files {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, p := range paths {
		f := fs.files[p]
		for bi := range f.blocks {
			blk := &f.blocks[bi]
			idx := -1
			for ri, r := range blk.Replicas {
				if r == failed {
					idx = ri
					break
				}
			}
			if idx < 0 {
				continue
			}
			// Drop the dead replica.
			blk.Replicas = append(blk.Replicas[:idx], blk.Replicas[idx+1:]...)
			live := fs.liveReplicas(blk)
			if len(live) == 0 {
				fs.LostBlocks++
				fs.metrics.LostBlocks.Inc()
				continue
			}
			// Copy from a surviving replica to a fresh live node. Targets
			// of still-in-flight copies count as holding the block —
			// otherwise two overlapping failure detections could pick the
			// same target and pin a duplicate replica.
			holding := make(map[netsim.NodeID]bool, len(blk.Replicas)+1)
			for _, r := range blk.Replicas {
				holding[r] = true
			}
			for t := range fs.pendingRepl[blk] {
				holding[t] = true
			}
			target := fs.randomDNWhere(holding, func(id netsim.NodeID) bool { return !fs.dead[id] })
			if target < 0 {
				fs.UnderReplicated++
				continue
			}
			if fs.pendingRepl[blk] == nil {
				fs.pendingRepl[blk] = make(map[netsim.NodeID]bool, 1)
			}
			fs.pendingRepl[blk][target] = true
			src := live[fs.rng.Intn(len(live))]
			blkRef := blk
			size := blk.Size
			clearPending := func() {
				delete(fs.pendingRepl[blkRef], target)
				if len(fs.pendingRepl[blkRef]) == 0 {
					delete(fs.pendingRepl, blkRef)
				}
			}
			_, err := fs.net.StartFlow(netsim.FlowSpec{
				Src:       src,
				Dst:       target,
				SrcPort:   ephemeralPort(fs.rng),
				DstPort:   flows.PortDataNodeData,
				SizeBytes: size,
				Label:     "hdfs/reReplication",
				OnComplete: func(*netsim.Flow) {
					clearPending()
					blkRef.Replicas = append(blkRef.Replicas, target)
					fs.ReReplicatedBytes += size
					fs.ReReplicatedBlocks++
					fs.metrics.ReReplicatedBlocks.Inc()
					fs.metrics.ReReplicatedBytes.Add(size)
				},
				// A copy torn down by a fault (source or target crash)
				// leaves the block under-replicated; a later detection may
				// retry. Either way the target is no longer pending.
				OnAbort: func(*netsim.Flow) { clearPending() },
			})
			if err != nil {
				panic(fmt.Sprintf("hdfs: re-replication flow: %v", err))
			}
		}
	}
}

// liveReplicas filters a block's replica set to serving DataNodes.
func (fs *FS) liveReplicas(blk *Block) []netsim.NodeID {
	var out []netsim.NodeID
	for _, r := range blk.Replicas {
		if !fs.dead[r] {
			out = append(out, r)
		}
	}
	return out
}
