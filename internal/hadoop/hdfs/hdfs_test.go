package hdfs

import (
	"errors"
	"testing"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
	"keddah/internal/sim"
	"keddah/internal/stats"
)

// testFS builds an FS over a 2-rack topology (8 workers) with a capture.
func testFS(t *testing.T, cfg Config) (*FS, *netsim.Network, *pcap.Capture, netsim.NodeID) {
	t.Helper()
	topo, err := netsim.MultiRack(2, 5, netsim.Gbps, 10*netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.New()
	net := netsim.NewNetwork(eng, topo, netsim.Config{})
	c := pcap.NewCapture()
	net.AddTap(c)
	hosts := topo.Hosts()
	fs, err := New(net, hosts[0], hosts[1:], cfg, stats.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	return fs, net, c, hosts[0]
}

func TestWriteFileBlocksAndReplication(t *testing.T) {
	fs, net, _, master := testFS(t, Config{BlockSize: 64 << 20, Replication: 3})
	var blocks []Block
	err := fs.WriteFile(master, "/f", 200<<20, 0, "t", func(b []Block) { blocks = b })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 4 { // ceil(200/64)
		t.Fatalf("blocks = %d, want 4", len(blocks))
	}
	var total int64
	for _, b := range blocks {
		total += b.Size
		if len(b.Replicas) != 3 {
			t.Errorf("block %d has %d replicas, want 3", b.ID, len(b.Replicas))
		}
		seen := map[netsim.NodeID]bool{}
		for _, r := range b.Replicas {
			if seen[r] {
				t.Errorf("block %d has duplicate replica %d", b.ID, r)
			}
			seen[r] = true
		}
	}
	if total != 200<<20 {
		t.Errorf("total block bytes = %d, want %d", total, 200<<20)
	}
	if blocks[3].Size != 200<<20-3*(64<<20) {
		t.Errorf("last partial block = %d", blocks[3].Size)
	}
	if fs.BytesWritten != 200<<20 {
		t.Errorf("BytesWritten = %d", fs.BytesWritten)
	}
}

func TestPlacementPolicySpansRacks(t *testing.T) {
	fs, net, _, master := testFS(t, Config{Replication: 3})
	var blocks []Block
	if err := fs.WriteFile(master, "/f", 128<<20, 0, "t", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	topo := net.Topology()
	racks := map[int]bool{}
	for _, r := range blocks[0].Replicas {
		racks[topo.Rack(r)] = true
	}
	if len(racks) < 2 {
		t.Errorf("replicas all in one rack: %v", blocks[0].Replicas)
	}
}

func TestWriterLocalFirstReplica(t *testing.T) {
	fs, net, _, _ := testFS(t, Config{Replication: 3})
	writer := fs.DataNodes()[2]
	var blocks []Block
	if err := fs.WriteFile(writer, "/f", 64<<20, 0, "t", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if blocks[0].Replicas[0] != writer {
		t.Errorf("first replica = %d, want writer %d", blocks[0].Replicas[0], writer)
	}
}

func TestWriteTrafficScalesWithReplication(t *testing.T) {
	volumes := map[int]int64{}
	for _, repl := range []int{1, 3} {
		fs, net, c, master := testFS(t, Config{Replication: repl})
		if err := fs.WriteFile(master, "/f", 256<<20, 0, "t", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Engine().RunAll(); err != nil {
			t.Fatal(err)
		}
		ds := flows.NewDataset(c.Truth())
		volumes[repl] = ds.Volume(flows.PhaseHDFSWrite)
	}
	if volumes[3] != 3*volumes[1] {
		t.Errorf("write volume at repl 3 = %d, want 3 x %d", volumes[3], volumes[1])
	}
}

func TestReadPrefersLocalReplica(t *testing.T) {
	fs, net, _, _ := testFS(t, Config{Replication: 3})
	writer := fs.DataNodes()[0]
	var blocks []Block
	if err := fs.WriteFile(writer, "/f", 64<<20, 0, "t", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	// Reading from the writer host must hit the local replica.
	var replica netsim.NodeID = -1
	fs.ReadBlock(writer, blocks[0], "t", func(r netsim.NodeID) { replica = r })
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if replica != writer {
		t.Errorf("read chose replica %d, want local %d", replica, writer)
	}
	if fs.LocalReads != 1 || fs.RemoteReads != 0 {
		t.Errorf("local/remote reads = %d/%d", fs.LocalReads, fs.RemoteReads)
	}
}

func TestReadFileSequential(t *testing.T) {
	fs, net, c, master := testFS(t, Config{BlockSize: 32 << 20})
	if err := fs.WriteFile(master, "/f", 96<<20, 0, "w", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	done := false
	reader := fs.DataNodes()[7]
	if err := fs.ReadFile(reader, "/f", "r", func() { done = true }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("read never completed")
	}
	// The read flows (label r/hdfsRead) must total the file size.
	var readBytes int64
	for _, r := range c.Truth() {
		if r.Label == "r/hdfsRead" {
			readBytes += r.Bytes
		}
	}
	if readBytes != 96<<20 {
		t.Errorf("read bytes on the wire = %d, want %d", readBytes, 96<<20)
	}
}

func TestNamespaceErrors(t *testing.T) {
	fs, net, _, master := testFS(t, Config{})
	if err := fs.WriteFile(master, "/f", 1<<20, 0, "t", nil); err != nil {
		t.Fatal(err)
	}
	// Double create rejected (even while in flight).
	if err := fs.WriteFile(master, "/f", 1<<20, 0, "t", nil); !errors.Is(err, ErrExists) {
		t.Errorf("duplicate create: err = %v, want ErrExists", err)
	}
	// Reading an in-flight file is rejected.
	if _, err := fs.File("/f"); !errors.Is(err, ErrIncomplete) {
		t.Errorf("in-flight read: err = %v, want ErrIncomplete", err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.File("/f"); err != nil {
		t.Errorf("complete read: err = %v", err)
	}
	if _, err := fs.File("/missing"); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing read: err = %v, want ErrNotFound", err)
	}
	if err := fs.WriteFile(master, "/g", 0, 0, "t", nil); err == nil {
		t.Error("zero-size write accepted")
	}
	if err := fs.WriteFile(master, "/h", 1, 99, "t", nil); err == nil {
		t.Error("replication > datanodes accepted")
	}
	fs.Delete("/f")
	if fs.Exists("/f") {
		t.Error("delete did not remove the file")
	}
}

func TestHeartbeatsStopAfterShutdown(t *testing.T) {
	fs, net, c, _ := testFS(t, Config{HeartbeatInterval: sim.Time(1_000_000_000)})
	fs.StartHeartbeats()
	eng := net.Engine()
	if _, err := eng.Run(sim.Time(5_500_000_000)); err != nil {
		t.Fatal(err)
	}
	fs.Shutdown()
	if _, err := eng.RunAll(); err != nil {
		t.Fatal(err)
	}
	ds := flows.NewDataset(c.Truth())
	n := ds.Count(flows.PhaseControl)
	// 9 datanodes × ~5 beats each (jittered start) ⇒ between 30 and 60.
	if n < 30 || n > 60 {
		t.Errorf("heartbeat control flows = %d, want ≈45", n)
	}
}

func TestNewValidation(t *testing.T) {
	topo, err := netsim.Star(3, netsim.Gbps)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.NewNetwork(sim.New(), topo, netsim.Config{})
	h := topo.Hosts()
	if _, err := New(net, h[0], nil, Config{}, stats.NewRNG(1)); err == nil {
		t.Error("no datanodes accepted")
	}
	if _, err := New(net, h[0], h[1:], Config{Replication: 5}, stats.NewRNG(1)); err == nil {
		t.Error("replication beyond cluster accepted")
	}
}
