package hdfs

import (
	"strings"
	"testing"

	"keddah/internal/netsim"
)

// writtenFS builds an FS with one 3-replica file fully written.
func writtenFS(t *testing.T) (*FS, netsim.NodeID) {
	t.Helper()
	fs, net, _, master := testFS(t, Config{BlockSize: 32 << 20, Replication: 3})
	if err := fs.WriteFile(master, "/f", 96<<20, 0, "t", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	return fs, master
}

// TestVerifyInvariantsCatchesCorruption checks each HDFS invariant fires
// on a deliberately corrupted filesystem and stays silent on a healthy
// one.
func TestVerifyInvariantsCatchesCorruption(t *testing.T) {
	cases := []struct {
		name    string
		corrupt func(fs *FS)
		want    string // "" = healthy, must stay nil
	}{
		{
			name:    "healthy",
			corrupt: func(fs *FS) {},
		},
		{
			name:    "bytes written drift",
			corrupt: func(fs *FS) { fs.BytesWritten++ },
			want:    "BytesWritten",
		},
		{
			name: "duplicate replica",
			corrupt: func(fs *FS) {
				b := &fs.files["/f"].blocks[0]
				b.Replicas = append(b.Replicas, b.Replicas[0])
			},
			want: "duplicate replica",
		},
		{
			name: "unrecorded block loss",
			corrupt: func(fs *FS) {
				fs.files["/f"].blocks[0].Replicas = nil
			},
			want: "zero replicas",
		},
		{
			name:    "negative counter",
			corrupt: func(fs *FS) { fs.ReadRetries = -1 },
			want:    "negative",
		},
		{
			name: "epoch moved backwards",
			corrupt: func(fs *FS) {
				dn := fs.datanodes[0]
				fs.epoch[dn] = 2
				if err := fs.VerifyInvariants(); err != nil {
					t.Fatalf("snapshot check failed: %v", err)
				}
				fs.epoch[dn] = 1
			},
			want: "epoch moved backwards",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs, _ := writtenFS(t)
			if err := fs.VerifyInvariants(); err != nil {
				t.Fatalf("freshly written FS fails invariants: %v", err)
			}
			tc.corrupt(fs)
			err := fs.VerifyInvariants()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("healthy FS fails invariants: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("corruption %q went undetected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestReplicatedBytesMatchesPlacement: the conservation anchor used by
// the capture-level wire check.
func TestReplicatedBytesMatchesPlacement(t *testing.T) {
	fs, _ := writtenFS(t)
	// 96 MiB at replication 3.
	if got, want := fs.ReplicatedBytes(), int64(3*96<<20); got != want {
		t.Fatalf("ReplicatedBytes = %d, want %d", got, want)
	}
}
