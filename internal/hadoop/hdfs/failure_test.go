package hdfs

import (
	"errors"
	"testing"

	"keddah/internal/netsim"
	"keddah/internal/sim"
)

func TestFailDataNodeReReplicates(t *testing.T) {
	fs, net, c, master := testFS(t, Config{BlockSize: 64 << 20, Replication: 3})
	var blocks []Block
	if err := fs.WriteFile(master, "/f", 256<<20, 0, "w", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}

	victim := blocks[0].Replicas[0]
	var victimBlocks int64
	for _, b := range blocks {
		for _, r := range b.Replicas {
			if r == victim {
				victimBlocks++
			}
		}
	}
	if victimBlocks == 0 {
		t.Skip("victim held no blocks (placement randomness)")
	}
	if err := fs.FailDataNode(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}

	if fs.ReReplicatedBlocks != victimBlocks {
		t.Errorf("re-replicated %d blocks, want %d", fs.ReReplicatedBlocks, victimBlocks)
	}
	if fs.LostBlocks != 0 {
		t.Errorf("lost %d blocks at replication 3", fs.LostBlocks)
	}
	// Every block must be back at full replication on live nodes.
	got, err := fs.File("/f")
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if len(b.Replicas) != 3 {
			t.Errorf("block %d has %d replicas, want 3", b.ID, len(b.Replicas))
		}
		for _, r := range b.Replicas {
			if r == victim {
				t.Errorf("block %d still lists the dead node", b.ID)
			}
		}
	}
	// The copies show up as labelled flows.
	found := false
	for _, rec := range c.Truth() {
		if rec.Label == "hdfs/reReplication" {
			found = true
			if rec.Bytes != 64<<20 {
				t.Errorf("re-replication flow of %d bytes, want one block", rec.Bytes)
			}
		}
	}
	if !found {
		t.Error("no re-replication flows captured")
	}
}

func TestFailDataNodeExcludedFromNewWrites(t *testing.T) {
	fs, net, _, master := testFS(t, Config{Replication: 3})
	victim := fs.DataNodes()[0]
	if err := fs.FailDataNode(victim); err != nil {
		t.Fatal(err)
	}
	var blocks []Block
	if err := fs.WriteFile(master, "/f", 512<<20, 0, "w", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	for _, b := range blocks {
		for _, r := range b.Replicas {
			if r == victim {
				t.Errorf("block %d placed on dead node", b.ID)
			}
		}
	}
	if fs.NodeAlive(victim) {
		t.Error("dead node reported alive")
	}
}

func TestFailDataNodeReadsAvoidDeadReplica(t *testing.T) {
	fs, net, _, master := testFS(t, Config{Replication: 3})
	var blocks []Block
	if err := fs.WriteFile(master, "/f", 64<<20, 0, "w", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	victim := blocks[0].Replicas[0]
	if err := fs.FailDataNode(victim); err != nil {
		t.Fatal(err)
	}
	// Read immediately (before re-replication): must pick a live replica.
	var replica netsim.NodeID = -1
	fs.ReadBlock(victim, blocks[0], "r", func(r netsim.NodeID) { replica = r })
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if replica == victim || replica < 0 {
		t.Errorf("read served by %d (dead node was %d)", replica, victim)
	}
}

func TestFailDataNodeValidation(t *testing.T) {
	fs, net, _, master := testFS(t, Config{})
	if err := fs.FailDataNode(master); !errors.Is(err, ErrUnknownDataNode) {
		t.Errorf("failing the namenode host: err = %v", err)
	}
	victim := fs.DataNodes()[2]
	if err := fs.FailDataNode(victim); err != nil {
		t.Fatal(err)
	}
	// Idempotent.
	if err := fs.FailDataNode(victim); err != nil {
		t.Errorf("second failure: %v", err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
}

func TestReplicationDetectionDelayRespected(t *testing.T) {
	fs, net, _, master := testFS(t, Config{ReplicationDetectionDelay: sim.Time(30_000_000_000)})
	var blocks []Block
	if err := fs.WriteFile(master, "/f", 128<<20, 0, "w", func(b []Block) { blocks = b }); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if err := fs.FailDataNode(blocks[0].Replicas[0]); err != nil {
		t.Fatal(err)
	}
	// Before the delay elapses: nothing re-replicated.
	if _, err := net.Engine().Run(net.Engine().Now() + sim.Time(20_000_000_000)); err != nil {
		t.Fatal(err)
	}
	if fs.ReReplicatedBlocks != 0 {
		t.Error("re-replication started before the detection delay")
	}
	if _, err := net.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if fs.ReReplicatedBlocks == 0 {
		t.Error("re-replication never started")
	}
}
