// Package hdfs simulates the Hadoop Distributed File System at the level
// that determines network behaviour: a NameNode with the default block
// placement policy, DataNodes co-located with compute hosts, write
// pipelines that replicate each block across the cluster, and
// locality-aware reads. Every byte HDFS moves is carried as a flow on the
// underlying netsim.Network using the real HDFS port conventions, so
// captured traffic classifies exactly as it would on a physical cluster.
package hdfs

import (
	"errors"
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/stats"
	"keddah/internal/telemetry"
)

// Config holds the filesystem-wide parameters the paper varies.
type Config struct {
	// BlockSize is dfs.blocksize (default 128 MiB).
	BlockSize int64
	// Replication is dfs.replication (default 3).
	Replication int
	// HeartbeatInterval is the DataNode→NameNode heartbeat period
	// (default 3s, as in dfs.heartbeat.interval).
	HeartbeatInterval sim.Time
	// ControlBytes is the size of one RPC exchange (default 512 B).
	ControlBytes int64
	// ReplicationDetectionDelay is how long the NameNode waits after a
	// DataNode failure before re-replicating its blocks (default
	// DefaultReplicationDetectionDelay).
	ReplicationDetectionDelay sim.Time
	// MaxPipelineRetries bounds write-pipeline recovery attempts per hop
	// before the replica is dropped as under-replicated (default 3, as
	// dfs.client.block.write.retries).
	MaxPipelineRetries int
	// PipelineRetryBase is the first pipeline-recovery backoff; it doubles
	// per attempt up to a 30 s cap (default 500 ms).
	PipelineRetryBase sim.Time
	// ReadRetryBase is the first read-retry backoff; it doubles per
	// attempt up to a 30 s cap (default 1 s).
	ReadRetryBase sim.Time
}

func (c *Config) applyDefaults() {
	if c.BlockSize <= 0 {
		c.BlockSize = 128 << 20
	}
	if c.Replication <= 0 {
		c.Replication = 3
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = 3_000_000_000
	}
	if c.ControlBytes <= 0 {
		c.ControlBytes = 512
	}
	if c.MaxPipelineRetries <= 0 {
		c.MaxPipelineRetries = 3
	}
	if c.PipelineRetryBase <= 0 {
		c.PipelineRetryBase = 500_000_000
	}
	if c.ReadRetryBase <= 0 {
		c.ReadRetryBase = 1_000_000_000
	}
}

// Block is one replicated chunk of a file.
type Block struct {
	ID       int64
	Size     int64
	Replicas []netsim.NodeID
}

// file is a namespace entry.
type file struct {
	path     string
	blocks   []Block
	complete bool
	waiters  []func()
}

// Errors callers can match.
var (
	ErrNotFound   = errors.New("hdfs: file not found")
	ErrExists     = errors.New("hdfs: file already exists")
	ErrIncomplete = errors.New("hdfs: file still being written")
)

// FS is the simulated filesystem: one NameNode plus a DataNode on every
// listed host.
type FS struct {
	cfg       Config
	net       *netsim.Network
	eng       *sim.Engine
	rng       *stats.RNG
	namenode  netsim.NodeID
	datanodes []netsim.NodeID
	files     map[string]*file
	nextBlock int64
	stopped   bool
	dead      map[netsim.NodeID]bool
	// epoch counts life transitions per DataNode; a pending failure
	// detection only fires if the node's epoch is unchanged, so a crashed
	// node that rejoins before detection is never re-replicated.
	epoch map[netsim.NodeID]int
	// lastEpochCheck snapshots epoch between invariant checks to assert
	// monotonicity (lazily allocated by VerifyInvariants).
	lastEpochCheck map[int64]int
	// pendingRepl tracks in-flight re-replication targets per block — the
	// NameNode's PendingReplicationBlocks role — so overlapping failure
	// detections never copy the same block to the same target twice.
	pendingRepl map[*Block]map[netsim.NodeID]bool

	// Stats.
	BytesWritten       int64
	BytesRead          int64
	LocalReads         int64
	RemoteReads        int64
	ReReplicatedBytes  int64
	ReReplicatedBlocks int64
	LostBlocks         int64
	UnderReplicated    int64
	PipelineRecoveries int64
	ReadRetries        int64

	metrics telemetry.HDFSMetrics
	tracer  *telemetry.Tracer
}

// SetTelemetry attaches filesystem instrumentation (zero-value metrics
// and a nil tracer detach it).
func (fs *FS) SetTelemetry(m telemetry.HDFSMetrics, tr *telemetry.Tracer) {
	fs.metrics = m
	fs.tracer = tr
}

// New creates an FS. The namenode must be a host in the network; every
// datanode host stores blocks and serves reads.
func New(net *netsim.Network, namenode netsim.NodeID, datanodes []netsim.NodeID, cfg Config, rng *stats.RNG) (*FS, error) {
	cfg.applyDefaults()
	if len(datanodes) == 0 {
		return nil, errors.New("hdfs: need at least one datanode")
	}
	if cfg.Replication > len(datanodes) {
		return nil, fmt.Errorf("hdfs: replication %d exceeds %d datanodes", cfg.Replication, len(datanodes))
	}
	dns := make([]netsim.NodeID, len(datanodes))
	copy(dns, datanodes)
	return &FS{
		cfg:         cfg,
		net:         net,
		eng:         net.Engine(),
		rng:         rng,
		namenode:    namenode,
		datanodes:   dns,
		files:       make(map[string]*file),
		dead:        make(map[netsim.NodeID]bool),
		epoch:       make(map[netsim.NodeID]int),
		pendingRepl: make(map[*Block]map[netsim.NodeID]bool),
	}, nil
}

// Config returns the filesystem configuration.
func (fs *FS) Config() Config { return fs.cfg }

// Network returns the network the filesystem transfers over.
func (fs *FS) Network() *netsim.Network { return fs.net }

// DataNodes returns the DataNode host set.
func (fs *FS) DataNodes() []netsim.NodeID {
	out := make([]netsim.NodeID, len(fs.datanodes))
	copy(out, fs.datanodes)
	return out
}

// StartHeartbeats launches the periodic DataNode→NameNode heartbeat
// control flows. They stop after Shutdown.
func (fs *FS) StartHeartbeats() {
	for _, dn := range fs.datanodes {
		fs.scheduleHeartbeat(dn)
	}
}

func (fs *FS) scheduleHeartbeat(dn netsim.NodeID) {
	// Jitter the first beat so DataNodes don't synchronise.
	delay := fs.cfg.HeartbeatInterval
	jitter := sim.Time(fs.rng.Float64() * float64(delay))
	fs.eng.After(jitter, func() { fs.heartbeat(dn) })
}

func (fs *FS) heartbeat(dn netsim.NodeID) {
	if fs.stopped || fs.dead[dn] {
		return
	}
	if dn != fs.namenode {
		fs.metrics.Heartbeats.Inc()
		fs.control(dn, fs.namenode, flows.PortNameNodeRPC, "hdfs/heartbeat")
	}
	fs.eng.After(fs.cfg.HeartbeatInterval, func() { fs.heartbeat(dn) })
}

// Shutdown stops heartbeat rescheduling so the event queue can drain.
func (fs *FS) Shutdown() { fs.stopped = true }

// control fires a small RPC exchange flow.
func (fs *FS) control(src, dst netsim.NodeID, port int, label string) {
	if src == dst {
		return
	}
	_, err := fs.net.StartFlow(netsim.FlowSpec{
		Src:       src,
		Dst:       dst,
		SrcPort:   ephemeralPort(fs.rng),
		DstPort:   port,
		SizeBytes: fs.cfg.ControlBytes,
		Label:     label,
	})
	if err != nil {
		// Control flows between cluster hosts cannot fail by
		// construction; a failure here is a programming error.
		panic(fmt.Sprintf("hdfs: control flow: %v", err))
	}
}

// ephemeralPort mimics the OS source-port allocator.
func ephemeralPort(rng *stats.RNG) int { return 32768 + rng.Intn(28232) }

// choosePipeline implements the default HDFS placement policy:
// first replica on the writer (when it is a live DataNode), second on a
// different rack, third on the same rack as the second, extras random.
// With too few live DataNodes the pipeline comes back short (an
// under-replicated write, as HDFS permits) or empty.
func (fs *FS) choosePipeline(writer netsim.NodeID, n int) []netsim.NodeID {
	topo := fs.net.Topology()
	used := make(map[netsim.NodeID]bool, n)
	pipeline := make([]netsim.NodeID, 0, n)

	add := func(id netsim.NodeID) bool {
		if id < 0 {
			return false
		}
		pipeline = append(pipeline, id)
		used[id] = true
		return true
	}

	isLiveDN := false
	for _, dn := range fs.datanodes {
		if dn == writer && !fs.dead[writer] {
			isLiveDN = true
			break
		}
	}
	first := writer
	if !isLiveDN {
		first = fs.randomDN(used)
	}
	if !add(first) || len(pipeline) >= n {
		return pipeline
	}

	// Second replica: prefer a different rack from the first.
	firstRack := topo.Rack(pipeline[0])
	second := fs.randomDNWhere(used, func(id netsim.NodeID) bool { return topo.Rack(id) != firstRack })
	if second < 0 {
		second = fs.randomDN(used)
	}
	if !add(second) || len(pipeline) >= n {
		return pipeline
	}

	// Third replica: same rack as the second, different node.
	secondRack := topo.Rack(pipeline[1])
	third := fs.randomDNWhere(used, func(id netsim.NodeID) bool { return topo.Rack(id) == secondRack })
	if third < 0 {
		third = fs.randomDN(used)
	}
	if !add(third) {
		return pipeline
	}

	for len(pipeline) < n {
		if !add(fs.randomDN(used)) {
			break
		}
	}
	return pipeline
}

// randomDN picks a uniform unused live DataNode, or -1 when none remain.
func (fs *FS) randomDN(used map[netsim.NodeID]bool) netsim.NodeID {
	candidates := fs.candidates(used, nil)
	if len(candidates) == 0 {
		return -1
	}
	return candidates[fs.rng.Intn(len(candidates))]
}

// randomDNWhere picks a uniform unused DataNode satisfying pred, or -1.
func (fs *FS) randomDNWhere(used map[netsim.NodeID]bool, pred func(netsim.NodeID) bool) netsim.NodeID {
	candidates := fs.candidates(used, pred)
	if len(candidates) == 0 {
		return -1
	}
	return candidates[fs.rng.Intn(len(candidates))]
}

func (fs *FS) candidates(used map[netsim.NodeID]bool, pred func(netsim.NodeID) bool) []netsim.NodeID {
	var out []netsim.NodeID
	for _, dn := range fs.datanodes {
		if used[dn] || fs.dead[dn] {
			continue
		}
		if pred != nil && !pred(dn) {
			continue
		}
		out = append(out, dn)
	}
	return out
}
