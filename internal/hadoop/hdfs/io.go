package hdfs

import (
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/netsim"
)

// File returns the block list of a stored file. Reading a file whose
// writer has not finished returns ErrIncomplete, as opening a lease-held
// file does on a real cluster.
func (fs *FS) File(path string) ([]Block, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if !f.complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, path)
	}
	out := make([]Block, len(f.blocks))
	copy(out, f.blocks)
	return out, nil
}

// Exists reports whether path is in the namespace.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// WhenComplete runs fn once path's writer has finished — immediately if
// the file is already complete. It returns ErrNotFound for unknown paths.
func (fs *FS) WhenComplete(path string, fn func()) error {
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if f.complete {
		fn()
		return nil
	}
	f.waiters = append(f.waiters, fn)
	return nil
}

// Delete removes a file from the namespace (replica space is not modelled).
func (fs *FS) Delete(path string) {
	delete(fs.files, path)
}

// WriteFile streams size bytes from client into HDFS as path, replicating
// each block through a write pipeline. replication <= 0 uses the
// filesystem default. done runs when the last block's pipeline drains.
//
// Blocks are written sequentially (as a single DFSOutputStream does);
// within a block all pipeline hops stream concurrently (cut-through).
func (fs *FS) WriteFile(client netsim.NodeID, path string, size int64, replication int, label string, done func([]Block)) error {
	if fs.Exists(path) {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if size <= 0 {
		return fmt.Errorf("hdfs: write %s: non-positive size %d", path, size)
	}
	if replication <= 0 {
		replication = fs.cfg.Replication
	}
	if replication > len(fs.datanodes) {
		return fmt.Errorf("hdfs: replication %d exceeds %d datanodes", replication, len(fs.datanodes))
	}
	// Reserve the namespace entry up front so concurrent writers collide.
	f := &file{path: path}
	fs.files[path] = f

	nblocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	var writeBlock func(i int)
	writeBlock = func(i int) {
		if i == nblocks {
			f.complete = true
			if done != nil {
				blocks := make([]Block, len(f.blocks))
				copy(blocks, f.blocks)
				done(blocks)
			}
			waiters := f.waiters
			f.waiters = nil
			for _, w := range waiters {
				w()
			}
			return
		}
		bsize := fs.cfg.BlockSize
		if rem := size - int64(i)*fs.cfg.BlockSize; rem < bsize {
			bsize = rem
		}
		// addBlock RPC to the NameNode.
		fs.control(client, fs.namenode, flows.PortNameNodeRPC, label+"/addBlock")

		pipeline := fs.choosePipeline(client, replication)
		if len(pipeline) == 0 {
			panic(fmt.Sprintf("hdfs: no live datanodes to write %s", path))
		}
		blk := Block{ID: fs.nextBlock, Size: bsize, Replicas: pipeline}
		fs.nextBlock++

		// One flow per pipeline hop, all streaming concurrently.
		remainingHops := len(pipeline)
		hopDone := func(*netsim.Flow) {
			remainingHops--
			if remainingHops == 0 {
				f.blocks = append(f.blocks, blk)
				fs.BytesWritten += bsize
				writeBlock(i + 1)
			}
		}
		prev := client
		for _, hop := range pipeline {
			_, err := fs.net.StartFlow(netsim.FlowSpec{
				Src:        prev,
				Dst:        hop,
				SrcPort:    ephemeralPort(fs.rng),
				DstPort:    flows.PortDataNodeData,
				SizeBytes:  bsize,
				Label:      label + "/hdfsWrite",
				OnComplete: hopDone,
			})
			if err != nil {
				panic(fmt.Sprintf("hdfs: pipeline flow: %v", err))
			}
			prev = hop
		}
	}
	writeBlock(0)
	return nil
}

// pickReplica selects the live replica a reader uses: local if
// available, then rack-local, then uniform random — the HDFS
// network-distance rule. Returns -1 when every replica is dead.
func (fs *FS) pickReplica(client netsim.NodeID, blk Block) netsim.NodeID {
	topo := fs.net.Topology()
	live := fs.liveReplicas(&blk)
	if len(live) == 0 {
		return -1
	}
	for _, r := range live {
		if r == client {
			return r
		}
	}
	var rackLocal []netsim.NodeID
	for _, r := range live {
		if topo.Rack(r) == topo.Rack(client) {
			rackLocal = append(rackLocal, r)
		}
	}
	if len(rackLocal) > 0 {
		return rackLocal[fs.rng.Intn(len(rackLocal))]
	}
	return live[fs.rng.Intn(len(live))]
}

// ReadBlock streams one block to client from the best live replica. done
// runs with the chosen replica when the transfer finishes. Reading a
// block with no surviving replica is unrecoverable for the caller and
// panics (supported failure experiments keep replication ≥ 2).
func (fs *FS) ReadBlock(client netsim.NodeID, blk Block, label string, done func(replica netsim.NodeID)) {
	// getBlockLocations RPC.
	fs.control(client, fs.namenode, flows.PortNameNodeRPC, label+"/getBlockLocations")

	replica := fs.pickReplica(client, blk)
	if replica < 0 {
		panic(fmt.Sprintf("hdfs: block %d has no live replica", blk.ID))
	}
	if replica == client {
		fs.LocalReads++
	} else {
		fs.RemoteReads++
	}
	_, err := fs.net.StartFlow(netsim.FlowSpec{
		Src:       replica,
		Dst:       client,
		SrcPort:   flows.PortDataNodeData,
		DstPort:   ephemeralPort(fs.rng),
		SizeBytes: blk.Size,
		Label:     label + "/hdfsRead",
		OnComplete: func(*netsim.Flow) {
			fs.BytesRead += blk.Size
			if done != nil {
				done(replica)
			}
		},
	})
	if err != nil {
		panic(fmt.Sprintf("hdfs: read flow: %v", err))
	}
}

// ReadFile streams every block of path to client sequentially and then
// runs done.
func (fs *FS) ReadFile(client netsim.NodeID, path string, label string, done func()) error {
	blocks, err := fs.File(path)
	if err != nil {
		return err
	}
	var readAt func(i int)
	readAt = func(i int) {
		if i == len(blocks) {
			if done != nil {
				done()
			}
			return
		}
		fs.ReadBlock(client, blocks[i], label, func(netsim.NodeID) { readAt(i + 1) })
	}
	readAt(0)
	return nil
}
