package hdfs

import (
	"fmt"

	"keddah/internal/flows"
	"keddah/internal/netsim"
	"keddah/internal/sim"
	"keddah/internal/telemetry"
)

// File returns the block list of a stored file. Reading a file whose
// writer has not finished returns ErrIncomplete, as opening a lease-held
// file does on a real cluster.
func (fs *FS) File(path string) ([]Block, error) {
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if !f.complete {
		return nil, fmt.Errorf("%w: %s", ErrIncomplete, path)
	}
	out := make([]Block, len(f.blocks))
	copy(out, f.blocks)
	return out, nil
}

// Exists reports whether path is in the namespace.
func (fs *FS) Exists(path string) bool {
	_, ok := fs.files[path]
	return ok
}

// WhenComplete runs fn once path's writer has finished — immediately if
// the file is already complete. It returns ErrNotFound for unknown paths.
func (fs *FS) WhenComplete(path string, fn func()) error {
	f, ok := fs.files[path]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	if f.complete {
		fn()
		return nil
	}
	f.waiters = append(f.waiters, fn)
	return nil
}

// Delete removes a file from the namespace (replica space is not modelled).
func (fs *FS) Delete(path string) {
	delete(fs.files, path)
}

// WriteFile streams size bytes from client into HDFS as path, replicating
// each block through a write pipeline. replication <= 0 uses the
// filesystem default. done runs when the last block's pipeline drains.
//
// Blocks are written sequentially (as a single DFSOutputStream does);
// within a block all pipeline hops stream concurrently (cut-through).
func (fs *FS) WriteFile(client netsim.NodeID, path string, size int64, replication int, label string, done func([]Block)) error {
	if fs.Exists(path) {
		return fmt.Errorf("%w: %s", ErrExists, path)
	}
	if size <= 0 {
		return fmt.Errorf("hdfs: write %s: non-positive size %d", path, size)
	}
	if replication <= 0 {
		replication = fs.cfg.Replication
	}
	if replication > len(fs.datanodes) {
		return fmt.Errorf("hdfs: replication %d exceeds %d datanodes", replication, len(fs.datanodes))
	}
	// Reserve the namespace entry up front so concurrent writers collide.
	f := &file{path: path}
	fs.files[path] = f

	nblocks := int((size + fs.cfg.BlockSize - 1) / fs.cfg.BlockSize)
	var writeBlock func(i int)
	writeBlock = func(i int) {
		if i == nblocks {
			f.complete = true
			if done != nil {
				blocks := make([]Block, len(f.blocks))
				copy(blocks, f.blocks)
				done(blocks)
			}
			waiters := f.waiters
			f.waiters = nil
			for _, w := range waiters {
				w()
			}
			return
		}
		bsize := fs.cfg.BlockSize
		if rem := size - int64(i)*fs.cfg.BlockSize; rem < bsize {
			bsize = rem
		}
		// addBlock RPC to the NameNode.
		fs.control(client, fs.namenode, flows.PortNameNodeRPC, label+"/addBlock")

		pipeline := fs.choosePipeline(client, replication)
		if len(pipeline) == 0 {
			panic(fmt.Sprintf("hdfs: no live datanodes to write %s", path))
		}
		blk := Block{ID: fs.nextBlock, Size: bsize, Replicas: pipeline}
		fs.nextBlock++
		pipeStart := fs.eng.Now()

		// One flow per pipeline hop, all streaming concurrently. A hop
		// torn down by a fault goes through pipeline recovery: resume the
		// remaining bytes into the same DataNode when it survived (a link
		// fault), restream the whole block into a replacement node when it
		// died, and after MaxPipelineRetries attempts drop the replica as
		// under-replicated — but never below one replica while a live
		// source remains.
		remainingHops := len(pipeline)
		hopFinished := func() {
			remainingHops--
			if remainingHops == 0 {
				if len(blk.Replicas) == 0 {
					fs.LostBlocks++
					fs.metrics.LostBlocks.Inc()
				}
				f.blocks = append(f.blocks, blk)
				fs.BytesWritten += bsize
				fs.metrics.BlocksWritten.Inc()
				fs.metrics.BytesWritten.Add(bsize)
				fs.tracer.Add(telemetry.Span{
					Cat: "hdfs", Name: "pipeline", Attr: fmt.Sprintf("%s#%d", path, blk.ID),
					StartNs: int64(pipeStart), EndNs: int64(fs.eng.Now()),
				})
				writeBlock(i + 1)
			}
		}

		var runHop func(src, dst netsim.NodeID, sz int64, attempt int)
		var recoverHop func(src, dst netsim.NodeID, remaining int64, attempt int)

		runHop = func(src, dst netsim.NodeID, sz int64, attempt int) {
			lbl := label + "/hdfsWrite"
			if attempt > 0 {
				lbl = label + "/hdfsWrite-recovery"
			}
			_, err := fs.net.StartFlow(netsim.FlowSpec{
				Src:        src,
				Dst:        dst,
				SrcPort:    ephemeralPort(fs.rng),
				DstPort:    flows.PortDataNodeData,
				SizeBytes:  sz,
				Label:      lbl,
				OnComplete: func(*netsim.Flow) { hopFinished() },
				OnAbort: func(fl *netsim.Flow) {
					rem := sz - fl.Transferred()
					if rem <= 0 {
						hopFinished()
						return
					}
					fs.eng.After(retryBackoff(fs.cfg.PipelineRetryBase, attempt), func() {
						recoverHop(src, dst, rem, attempt+1)
					})
				},
			})
			if err != nil {
				panic(fmt.Sprintf("hdfs: pipeline flow: %v", err))
			}
		}

		recoverHop = func(src, dst netsim.NodeID, remaining int64, attempt int) {
			dropReplica := func() {
				for ri, r := range blk.Replicas {
					if r == dst {
						blk.Replicas = append(blk.Replicas[:ri], blk.Replicas[ri+1:]...)
						break
					}
				}
				fs.UnderReplicated++
				hopFinished()
			}
			// Nearest live source: the hop's original feeder, then the
			// writing client, then any surviving replica of this block.
			newSrc := netsim.NodeID(-1)
			for _, cand := range append([]netsim.NodeID{src, client}, blk.Replicas...) {
				if cand != dst && cand >= 0 && !fs.dead[cand] {
					newSrc = cand
					break
				}
			}
			if newSrc < 0 {
				// Nothing can source the bytes: give the replica up.
				dropReplica()
				return
			}
			if attempt > fs.cfg.MaxPipelineRetries && len(blk.Replicas) > 1 {
				dropReplica()
				return
			}
			fs.PipelineRecoveries++
			fs.metrics.PipelineRecoveries.Inc()
			if !fs.dead[dst] {
				// The DataNode survived — a link fault cut the stream;
				// resume the block from where it broke.
				runHop(newSrc, dst, remaining, attempt)
				return
			}
			// Replace the dead node and restream the whole block.
			holding := make(map[netsim.NodeID]bool, len(blk.Replicas)+1)
			for _, r := range blk.Replicas {
				holding[r] = true
			}
			target := fs.randomDNWhere(holding, func(id netsim.NodeID) bool { return !fs.dead[id] })
			if target < 0 {
				if len(blk.Replicas) > 1 {
					dropReplica()
					return
				}
				// Sole replica with nowhere to go: wait for the fabric
				// to heal and try again (capped backoff).
				fs.eng.After(retryBackoff(fs.cfg.PipelineRetryBase, attempt), func() {
					recoverHop(newSrc, dst, remaining, attempt+1)
				})
				return
			}
			for ri, r := range blk.Replicas {
				if r == dst {
					blk.Replicas[ri] = target
					break
				}
			}
			runHop(newSrc, target, bsize, attempt)
		}

		prev := client
		for _, hop := range pipeline {
			runHop(prev, hop, bsize, 0)
			prev = hop
		}
	}
	writeBlock(0)
	return nil
}

// maxRetryBackoff caps exponential retry backoff across HDFS recovery
// paths (pipeline recovery, read retry).
const maxRetryBackoff = 30_000_000_000

// retryBackoff doubles base per attempt, capped at maxRetryBackoff.
func retryBackoff(base sim.Time, attempt int) sim.Time {
	d := base
	for i := 0; i < attempt && d < maxRetryBackoff; i++ {
		d *= 2
	}
	if d > maxRetryBackoff {
		d = maxRetryBackoff
	}
	return d
}

// pickReplica selects the live replica a reader uses: local if
// available, then rack-local, then uniform random — the HDFS
// network-distance rule. Returns -1 when every replica is dead.
func (fs *FS) pickReplica(client netsim.NodeID, blk Block) netsim.NodeID {
	topo := fs.net.Topology()
	live := fs.liveReplicas(&blk)
	if len(live) == 0 {
		return -1
	}
	for _, r := range live {
		if r == client {
			return r
		}
	}
	var rackLocal []netsim.NodeID
	for _, r := range live {
		if topo.Rack(r) == topo.Rack(client) {
			rackLocal = append(rackLocal, r)
		}
	}
	if len(rackLocal) > 0 {
		return rackLocal[fs.rng.Intn(len(rackLocal))]
	}
	return live[fs.rng.Intn(len(live))]
}

// maxReadRetries bounds read retries before the block is declared
// unreadable (a real DFSInputStream gives up after cycling the replica
// list a few times; faults are expected to have healed long before 20
// capped backoffs elapse).
const maxReadRetries = 20

// ReadBlock streams one block to client from the best live replica. done
// runs with the chosen replica when the transfer finishes. A read torn
// down by a fault — or finding no live replica — retries against the
// current replica set with exponential backoff; a block that stays
// unreadable through every retry is unrecoverable for the caller and
// panics (supported failure experiments keep replication ≥ 2).
func (fs *FS) ReadBlock(client netsim.NodeID, blk Block, label string, done func(replica netsim.NodeID)) {
	fs.readBlockAttempt(client, blk, label, done, 0)
}

func (fs *FS) readBlockAttempt(client netsim.NodeID, blk Block, label string, done func(replica netsim.NodeID), attempt int) {
	// getBlockLocations RPC (re-issued per retry, as DFSInputStream does).
	fs.control(client, fs.namenode, flows.PortNameNodeRPC, label+"/getBlockLocations")

	retry := func() {
		if attempt >= maxReadRetries {
			panic(fmt.Sprintf("hdfs: block %d unreadable after %d retries", blk.ID, attempt))
		}
		fs.ReadRetries++
		fs.metrics.ReadRetries.Inc()
		fs.eng.After(retryBackoff(fs.cfg.ReadRetryBase, attempt), func() {
			fs.readBlockAttempt(client, blk, label, done, attempt+1)
		})
	}

	replica := fs.pickReplica(client, blk)
	if replica < 0 {
		// Every replica is currently dead; wait for one to rejoin.
		retry()
		return
	}
	if replica == client {
		fs.LocalReads++
	} else {
		fs.RemoteReads++
	}
	lbl := label + "/hdfsRead"
	if attempt > 0 {
		lbl = label + "/hdfsRead-retry"
	}
	_, err := fs.net.StartFlow(netsim.FlowSpec{
		Src:       replica,
		Dst:       client,
		SrcPort:   flows.PortDataNodeData,
		DstPort:   ephemeralPort(fs.rng),
		SizeBytes: blk.Size,
		Label:     lbl,
		OnComplete: func(*netsim.Flow) {
			fs.BytesRead += blk.Size
			fs.metrics.BlocksRead.Inc()
			fs.metrics.BytesRead.Add(blk.Size)
			if done != nil {
				done(replica)
			}
		},
		OnAbort: func(*netsim.Flow) { retry() },
	})
	if err != nil {
		panic(fmt.Sprintf("hdfs: read flow: %v", err))
	}
}

// ReadFile streams every block of path to client sequentially and then
// runs done.
func (fs *FS) ReadFile(client netsim.NodeID, path string, label string, done func()) error {
	blocks, err := fs.File(path)
	if err != nil {
		return err
	}
	var readAt func(i int)
	readAt = func(i int) {
		if i == len(blocks) {
			if done != nil {
				done()
			}
			return
		}
		fs.ReadBlock(client, blocks[i], label, func(netsim.NodeID) { readAt(i + 1) })
	}
	readAt(0)
	return nil
}
