// Package serve implements keddah-serve: a long-running HTTP daemon that
// loads fitted model libraries and streams synthetic flow schedules
// (JSONL, CSV or keddah-ns3 format) to many concurrent clients with
// per-request seeds. The batch toolchain produces correct traffic; this
// package makes producing it survivable as infrastructure other
// experiments depend on. It is engineered robustness-first:
//
//   - Admission control: a bounded worker pool with a bounded wait
//     queue. When both are full the daemon sheds load with 503 +
//     Retry-After instead of queueing unboundedly; queue depth and shed
//     counts are exported through the telemetry registry.
//   - Deadlines and cancellation: every stream runs under a per-request
//     deadline, the request context is threaded into generation
//     (core.GenerateChunks polls it mid-schedule), and each chunk write
//     carries a write deadline so a slow-loris reader cannot pin a
//     worker slot forever.
//   - Bounded memory: schedules are generated once as compact structs
//     (capped by MaxFlows, estimated before any work) and encoded chunk
//     by chunk straight onto the wire — the encoded trace is never
//     materialised, so per-stream memory is flat regardless of schedule
//     length.
//   - Graceful degradation: a generation panic is recovered per-request
//     (500 before the first byte, a hard connection abort mid-stream)
//     without killing the daemon; model handles load through a
//     single-flight cache with a negative-entry TTL, so one corrupt
//     model file poisons only its own key, and only briefly.
//   - Graceful shutdown: BeginDrain stops admission (readyz flips to
//     503), Drain waits for in-flight streams up to a deadline, then
//     HardStop cancels whatever remains.
package serve

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"keddah/internal/core"
	"keddah/internal/telemetry"
)

// Config parameterises a Server. The zero value of every limit selects a
// production-shaped default; model sources are the only required fields.
type Config struct {
	// Models maps model names to fitted-model JSON paths, preconfigured.
	Models map[string]string
	// ModelDir, when set, resolves model names not present in Models
	// lazily as <ModelDir>/<name>.json. Names are restricted to
	// [A-Za-z0-9._-] (no separators), so requests cannot traverse paths.
	ModelDir string
	// DefaultModel is used when a request names no model. Empty with
	// exactly one entry in Models selects that entry.
	DefaultModel string

	// MaxStreams bounds concurrently generating/encoding streams
	// (default 4×GOMAXPROCS).
	MaxStreams int
	// MaxQueue bounds requests waiting for a stream slot (default
	// 4×MaxStreams). 0 queue + full pool sheds immediately. Negative
	// disables queueing explicitly.
	MaxQueue int
	// QueueWait caps how long an admitted waiter holds a queue slot
	// before being shed (default 2s).
	QueueWait time.Duration
	// RetryAfter is the hint returned with every 503 (default 1s,
	// rounded up to whole seconds on the wire).
	RetryAfter time.Duration

	// RequestTimeout is the per-request generation+stream deadline
	// (default 60s). Requests may ask for less, never for more.
	RequestTimeout time.Duration
	// WriteTimeout is the per-chunk client write deadline (default 15s);
	// it is what defeats slow-loris readers.
	WriteTimeout time.Duration

	// ChunkFlows is the encode/flush granularity in flows (default 2048).
	ChunkFlows int
	// MaxFlows rejects any request whose predicted schedule exceeds this
	// many flows (default 8M) before generation starts.
	MaxFlows int64

	// NegModelTTL is how long a failed model load is remembered before
	// the next request retries it (default 5s).
	NegModelTTL time.Duration

	// Telemetry receives server metrics; nil builds a private session.
	Telemetry *telemetry.Telemetry

	// now is the cache clock, overridable in tests.
	now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.MaxStreams <= 0 {
		c.MaxStreams = 4 * runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxStreams
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 2 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 15 * time.Second
	}
	if c.ChunkFlows <= 0 {
		c.ChunkFlows = 2048
	}
	if c.MaxFlows <= 0 {
		c.MaxFlows = 8 << 20
	}
	if c.NegModelTTL <= 0 {
		c.NegModelTTL = 5 * time.Second
	}
	if c.Telemetry == nil {
		c.Telemetry = telemetry.New()
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// ErrUnknownModel reports a model name no configured source resolves.
var ErrUnknownModel = errors.New("serve: unknown model")

// modelNameRe is the safe lazy-resolution alphabet: no path separators,
// no dot-dot, nothing a filesystem interprets.
var modelNameRe = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Server is one keddah-serve instance. Create with New, expose with
// Handler, shut down with Drain.
type Server struct {
	cfg   Config
	tel   *telemetry.Telemetry
	adm   *admission
	cache *modelCache

	draining atomic.Bool

	// mu guards the stream registry. Registering a stream and flipping
	// draining are mutually exclusive, so once BeginDrain returns no new
	// stream can slip past the drain unobserved.
	mu      sync.Mutex
	active  int
	allDone *sync.Cond // broadcast when active drops to zero

	// hardCtx is cancelled by HardStop; every stream's context descends
	// from it, so cancelling it aborts all in-flight generation.
	hardCtx  context.Context
	hardStop context.CancelFunc

	// hook, when non-nil, is called at named stages of a stream — the
	// test seam for fault injection (panics, stalls). Always nil in
	// production.
	hook func(stage string)
}

// New builds a Server from cfg. At least one model source (Models or
// ModelDir) is required.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Models) == 0 && cfg.ModelDir == "" {
		return nil, fmt.Errorf("serve: no model source configured (Models or ModelDir)")
	}
	if cfg.DefaultModel == "" && len(cfg.Models) == 1 {
		for name := range cfg.Models {
			cfg.DefaultModel = name
		}
	}
	for name := range cfg.Models {
		if !modelNameRe.MatchString(name) {
			return nil, fmt.Errorf("serve: invalid model name %q", name)
		}
	}
	s := &Server{
		cfg: cfg,
		tel: cfg.Telemetry,
		adm: newAdmission(cfg.MaxStreams, cfg.MaxQueue, &cfg.Telemetry.Serve),
	}
	s.cache = newModelCache(s.loadModel, cfg.NegModelTTL, cfg.now, &cfg.Telemetry.Serve)
	s.allDone = sync.NewCond(&s.mu)
	s.hardCtx, s.hardStop = context.WithCancel(context.Background())
	return s, nil
}

// registerStream claims a place in the stream registry, or reports that
// the server is draining and the stream must be shed instead.
func (s *Server) registerStream() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Load() {
		return false
	}
	s.active++
	return true
}

func (s *Server) unregisterStream() {
	s.mu.Lock()
	s.active--
	if s.active == 0 {
		s.allDone.Broadcast()
	}
	s.mu.Unlock()
}

// resolveModel maps a request's model name to a file path.
func (s *Server) resolveModel(name string) (string, error) {
	if path, ok := s.cfg.Models[name]; ok {
		return path, nil
	}
	if s.cfg.ModelDir != "" && modelNameRe.MatchString(name) {
		return s.cfg.ModelDir + "/" + name + ".json", nil
	}
	return "", fmt.Errorf("%w: %q", ErrUnknownModel, name)
}

// loadModel is the cache's loader: resolve, open, decode.
func (s *Server) loadModel(name string) (*core.Model, error) {
	path, err := s.resolveModel(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %q (%s)", ErrUnknownModel, name, path)
		}
		return nil, fmt.Errorf("serve: open model %q: %w", name, err)
	}
	defer f.Close()
	m, err := core.ReadModel(f)
	if err != nil {
		return nil, fmt.Errorf("serve: model %q: %w", name, err)
	}
	return m, nil
}

// Draining reports whether admission has been stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// BeginDrain stops admission: /readyz flips to 503 and every new
// generation request is shed with 503 + Retry-After. In-flight streams
// are untouched. Safe to call more than once.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	flipped := s.draining.CompareAndSwap(false, true)
	s.mu.Unlock()
	if flipped {
		s.tel.Serve.Draining.Set(1)
	}
}

// Drain is the graceful-shutdown sequence: stop admission, wait for
// in-flight streams until ctx expires, then HardStop the rest. It
// returns nil when every stream finished on its own, otherwise
// ctx.Err() after the stragglers have been aborted.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() {
		s.mu.Lock()
		for s.active > 0 {
			s.allDone.Wait()
		}
		s.mu.Unlock()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.HardStop()
		// Aborted streams unwind within a write deadline at most.
		<-done
		return ctx.Err()
	}
}

// HardStop cancels every in-flight stream's context immediately.
func (s *Server) HardStop() { s.hardStop() }

// Handler returns the daemon's full HTTP surface:
//
//	POST|GET /v1/generate  stream one workload's synthetic schedule
//	POST     /v1/mix       stream a multi-tenant Poisson job mix
//	GET      /v1/models    model source and cache states
//	GET      /healthz      liveness (200 while the process serves)
//	GET      /readyz       readiness (503 once draining)
//	         /metrics, /metrics.json, /trace.csv, /debug/pprof/...
//	                       the telemetry ops surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		if s.Draining() {
			w.Header().Set("Retry-After", s.retryAfterSecs())
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "draining")
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/v1/models", s.handleModels)
	mux.HandleFunc("/v1/generate", s.handleGenerate)
	mux.HandleFunc("/v1/mix", s.handleMix)
	tel := s.tel.Handler()
	mux.Handle("/metrics", tel)
	mux.Handle("/metrics.json", tel)
	mux.Handle("/trace.csv", tel)
	mux.Handle("/debug/pprof/", tel)
	return mux
}

func (s *Server) retryAfterSecs() string {
	secs := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}
