package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keddah/internal/core"
	"keddah/internal/workload"
)

// The package fixture: one fitted two-workload model, written to disk
// once for the whole test run so every server test loads the same file.
var (
	testModel     *core.Model
	testModelFile string
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "keddah-serve-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	code := func() int {
		defer os.RemoveAll(dir)
		ts, _, err := core.Capture(core.ClusterSpec{Workers: 8, Seed: 13}, []workload.RunSpec{
			{Profile: "terasort", InputBytes: 256 << 20, JobName: "t0", InputPath: "/d/t"},
			{Profile: "terasort", InputBytes: 256 << 20, JobName: "t1", InputPath: "/d/t"},
			{Profile: "wordcount", InputBytes: 256 << 20, JobName: "w0", InputPath: "/d/w"},
			{Profile: "wordcount", InputBytes: 256 << 20, JobName: "w1", InputPath: "/d/w"},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fixture capture:", err)
			return 1
		}
		testModel, err = core.Fit(ts, core.FitOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "fixture fit:", err)
			return 1
		}
		testModelFile = dir + "/bench.json"
		f, err := os.Create(testModelFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := testModel.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "fixture write:", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return m.Run()
	}()
	os.Exit(code)
}

// newTestServer builds a Server over the fixture model plus an
// httptest.Server for its handler.
func newTestServer(t *testing.T, mut func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Models: map[string]string{"bench": testModelFile}}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

func get(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

// TestStreamMatchesBatch is the core acceptance check: for every format,
// the bytes a streamed request delivers are identical to what the batch
// exporter produces from the same model, spec and seed.
func TestStreamMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) {
		c.ChunkFlows = 13 // odd and small: force many partial chunks
	})
	spec := core.GenSpec{Workload: "terasort", InputBytes: 1 << 30, Jobs: 2, Workers: 8, Seed: 42}
	sched, err := testModel.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	batch := map[string]func(io.Writer) error{
		"jsonl": func(w io.Writer) error { return core.ExportJSONL(w, sched) },
		"csv":   func(w io.Writer) error { return core.ExportCSV(w, sched) },
		"ns3":   func(w io.Writer) error { return core.ExportNS3(w, sched, spec.Workers) },
	}
	for format, export := range batch {
		t.Run(format, func(t *testing.T) {
			var want bytes.Buffer
			if err := export(&want); err != nil {
				t.Fatal(err)
			}
			url := hs.URL + "/v1/generate?workload=terasort&inputBytes=1073741824&jobs=2&workers=8&seed=42&format=" + format
			resp, body, err := get(t, url)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			if got := resp.Header.Get("X-Keddah-Model"); got != "bench" {
				t.Errorf("X-Keddah-Model = %q, want bench", got)
			}
			if !bytes.Equal(body, want.Bytes()) {
				t.Fatalf("streamed %s differs from batch export: %d vs %d bytes", format, len(body), want.Len())
			}
			if len(body) == 0 {
				t.Fatal("empty stream")
			}
		})
	}
}

// TestMixStreamMatchesBatch does the same for the POST /v1/mix endpoint.
func TestMixStreamMatchesBatch(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.ChunkFlows = 11 })
	spec := core.MixSpec{
		Weights:       map[string]float64{"terasort": 3, "wordcount": 1},
		JobsPerMinute: 6,
		WindowSecs:    300,
		Workers:       8,
		Seed:          5,
	}
	sched, err := testModel.GenerateMix(spec)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.ExportJSONL(&want, sched); err != nil {
		t.Fatal(err)
	}
	req := map[string]any{"model": "bench", "format": "jsonl", "spec": spec}
	payload, _ := json.Marshal(req)
	resp, err := http.Post(hs.URL+"/v1/mix", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, want.Bytes()) {
		t.Fatalf("streamed mix differs from batch export: %d vs %d bytes", len(body), want.Len())
	}
}

// TestRequestValidation walks the rejection surface: every row must fail
// with the right status and never reach generation.
func TestRequestValidation(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) { c.MaxFlows = 50 })
	cases := []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"unknown query key", "GET", "/v1/generate?workload=terasort&bogus=1", "", http.StatusBadRequest},
		{"bad format", "GET", "/v1/generate?workload=terasort&format=xml", "", http.StatusBadRequest},
		{"unparseable int", "GET", "/v1/generate?workload=terasort&jobs=many", "", http.StatusBadRequest},
		{"unknown workload", "GET", "/v1/generate?workload=nosuch", "", http.StatusBadRequest},
		{"negative input", "GET", "/v1/generate?workload=terasort&inputBytes=-5", "", http.StatusBadRequest},
		{"unknown model", "GET", "/v1/generate?workload=terasort&model=missing", "", http.StatusNotFound},
		{"schedule too large", "GET", "/v1/generate?workload=terasort&jobs=1000", "", http.StatusRequestEntityTooLarge},
		{"method not allowed", "DELETE", "/v1/generate", "", http.StatusMethodNotAllowed},
		{"mix needs POST", "GET", "/v1/mix", "", http.StatusMethodNotAllowed},
		{"unknown JSON field", "POST", "/v1/generate", `{"speed": 9}`, http.StatusBadRequest},
		{"trailing JSON data", "POST", "/v1/generate", `{"spec":{"workload":"terasort"}} {}`, http.StatusBadRequest},
		{"mix empty weights", "POST", "/v1/mix", `{"spec":{}}`, http.StatusBadRequest},
		{"mix negative weight", "POST", "/v1/mix", `{"spec":{"weights":{"terasort":-1}}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var rd io.Reader
			if tc.body != "" {
				rd = strings.NewReader(tc.body)
			}
			req, err := http.NewRequest(tc.method, hs.URL+tc.path, rd)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status %d, want %d (%s)", resp.StatusCode, tc.status, body)
			}
			var msg map[string]string
			if err := json.Unmarshal(body, &msg); err != nil || msg["error"] == "" {
				t.Fatalf("expected a JSON error body, got %q", body)
			}
		})
	}
	if got := s.tel.Serve.Streams.Value(); got != 0 {
		t.Errorf("rejected requests completed %d streams", got)
	}
}

// TestLoadShed fills the pool (no queue) and checks the next request is
// shed with 503 + Retry-After while the daemon keeps serving.
func TestLoadShed(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.MaxStreams = 2
		c.MaxQueue = -1 // shed immediately when the pool is full
		c.RetryAfter = 3 * time.Second
	})
	entered := make(chan struct{}, 2)
	release := make(chan struct{})
	s.hook = func(stage string) {
		if stage == "generate" {
			entered <- struct{}{}
			<-release
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, body, err := get(t, hs.URL+"/v1/generate?workload=terasort")
			if err != nil {
				t.Errorf("held stream: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK || len(body) == 0 {
				t.Errorf("held stream: status %d, %d bytes", resp.StatusCode, len(body))
			}
		}()
	}
	<-entered
	<-entered

	resp, _, err := get(t, hs.URL+"/v1/generate?workload=terasort")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want 3", got)
	}
	if got := s.tel.Serve.Shed.Value(); got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	close(release)
	wg.Wait()
	if got := s.tel.Serve.Streams.Value(); got != 2 {
		t.Errorf("completed streams = %d, want 2", got)
	}
}

// TestQueueTimeout parks a request in the wait queue longer than
// QueueWait and checks it is shed late with the right counter.
func TestQueueTimeout(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) {
		c.MaxStreams = 1
		c.MaxQueue = 4
		c.QueueWait = 50 * time.Millisecond
	})
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hook = func(stage string) {
		if stage == "generate" {
			entered <- struct{}{}
			<-release
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		get(t, hs.URL+"/v1/generate?workload=terasort")
	}()
	<-entered

	start := time.Now()
	resp, _, err := get(t, hs.URL+"/v1/generate?workload=terasort")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("queued-past-deadline status %d, want 503", resp.StatusCode)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("shed after %v, before QueueWait elapsed", waited)
	}
	if got := s.tel.Serve.QueueTimeouts.Value(); got != 1 {
		t.Errorf("queue timeout counter = %d, want 1", got)
	}
	close(release)
	<-done
}

// TestDeadlineBeforeFirstByte: a request whose deadline expires before
// any output gets a clean 504.
func TestDeadlineBeforeFirstByte(t *testing.T) {
	s, hs := newTestServer(t, nil)
	s.hook = func(stage string) {
		if stage == "generate" {
			time.Sleep(80 * time.Millisecond)
		}
	}
	resp, _, err := get(t, hs.URL+"/v1/generate?workload=terasort&timeoutMs=20")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
	if got := s.tel.Serve.Deadlines.Value(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
}

// TestDeadlineMidStream: once bytes are on the wire a blown deadline
// must abort the connection — the client sees truncation, not a clean
// EOF that looks like a complete trace.
func TestDeadlineMidStream(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) { c.ChunkFlows = 8 })
	var chunks atomic.Int32
	s.hook = func(stage string) {
		if stage == "chunk" && chunks.Add(1) == 1 {
			time.Sleep(120 * time.Millisecond) // outlive the deadline after chunk 1
		}
	}
	resp, err := http.Get(hs.URL + "/v1/generate?workload=terasort&jobs=4&timeoutMs=40")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 then truncation", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("read %d bytes with clean EOF; want a truncated-body error", len(body))
	}
	if len(body) == 0 {
		t.Fatal("no bytes before the deadline fired")
	}
	if got := s.tel.Serve.Deadlines.Value(); got != 1 {
		t.Errorf("deadline counter = %d, want 1", got)
	}
	if got := s.tel.Serve.Streams.Value(); got != 0 {
		t.Errorf("aborted stream counted as completed (%d)", got)
	}
}

// TestPanicRecovery: a panicking generation must never take the daemon
// down — 500 before the first byte, a connection abort mid-stream, and
// the next request works either way.
func TestPanicRecovery(t *testing.T) {
	t.Run("before body", func(t *testing.T) {
		s, hs := newTestServer(t, nil)
		var once atomic.Bool
		s.hook = func(stage string) {
			if stage == "generate" && once.CompareAndSwap(false, true) {
				panic("injected model fault")
			}
		}
		resp, body, err := get(t, hs.URL+"/v1/generate?workload=terasort")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("status %d, want 500", resp.StatusCode)
		}
		if !bytes.Contains(body, []byte("injected model fault")) {
			t.Fatalf("error body %q does not name the panic", body)
		}
		if got := s.tel.Serve.Panics.Value(); got != 1 {
			t.Errorf("panic counter = %d, want 1", got)
		}
		// The daemon survived: the same endpoint serves the next request.
		resp, body, err = get(t, hs.URL+"/v1/generate?workload=terasort")
		if err != nil || resp.StatusCode != http.StatusOK || len(body) == 0 {
			t.Fatalf("request after panic: %v, status %d, %d bytes", err, resp.StatusCode, len(body))
		}
	})
	t.Run("mid-stream", func(t *testing.T) {
		s, hs := newTestServer(t, func(c *Config) { c.ChunkFlows = 8 })
		var chunks atomic.Int32
		s.hook = func(stage string) {
			if stage == "chunk" && chunks.Add(1) == 2 {
				panic("injected encode fault")
			}
		}
		resp, err := http.Get(hs.URL + "/v1/generate?workload=terasort&jobs=4")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err == nil {
			t.Fatalf("read %d bytes with clean EOF; want a truncated-body error", len(body))
		}
		if got := s.tel.Serve.Panics.Value(); got != 1 {
			t.Errorf("panic counter = %d, want 1", got)
		}
		s.hook = nil
		resp2, body2, err := get(t, hs.URL+"/v1/generate?workload=terasort")
		if err != nil || resp2.StatusCode != http.StatusOK || len(body2) == 0 {
			t.Fatalf("request after mid-stream panic: %v, status %d", err, resp2.StatusCode)
		}
	})
}

// TestDrainGraceful: BeginDrain flips readiness and sheds new work while
// in-flight streams run to a complete, untruncated end.
func TestDrainGraceful(t *testing.T) {
	s, hs := newTestServer(t, nil)
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	s.hook = func(stage string) {
		if stage == "generate" {
			entered <- struct{}{}
			<-release
		}
	}
	type result struct {
		status int
		bytes  int
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/generate?workload=terasort&seed=7")
		if err != nil {
			inflight <- result{err: err}
			return
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		inflight <- result{status: resp.StatusCode, bytes: len(body), err: err}
	}()
	<-entered

	if resp, _, _ := get(t, hs.URL+"/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", resp.StatusCode)
	}
	s.BeginDrain()
	if resp, _, _ := get(t, hs.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: %d, want 503", resp.StatusCode)
	}
	resp, _, err := get(t, hs.URL+"/v1/generate?workload=terasort")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("new request during drain: %d (Retry-After %q), want 503 with hint",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if resp, _, _ := get(t, hs.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during drain: %d, want 200", resp.StatusCode)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	close(release)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	r := <-inflight
	if r.err != nil || r.status != http.StatusOK || r.bytes == 0 {
		t.Fatalf("in-flight stream during drain: %+v", r)
	}
	// The completed stream must be byte-identical to batch: drain did not
	// truncate it.
	sched, err := testModel.Generate(core.GenSpec{Workload: "terasort", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := core.ExportJSONL(&want, sched); err != nil {
		t.Fatal(err)
	}
	if r.bytes != want.Len() {
		t.Fatalf("drained stream delivered %d bytes, batch has %d", r.bytes, want.Len())
	}
}

// TestDrainDeadlineHardStops: a drain that outlives its deadline aborts
// the stragglers instead of hanging forever.
func TestDrainDeadlineHardStops(t *testing.T) {
	s, hs := newTestServer(t, func(c *Config) { c.ChunkFlows = 4 })
	s.hook = func(stage string) {
		if stage == "chunk" {
			time.Sleep(50 * time.Millisecond) // a deliberately slow stream
		}
	}
	bodyErr := make(chan error, 1)
	go func() {
		resp, err := http.Get(hs.URL + "/v1/generate?workload=terasort&jobs=8")
		if err != nil {
			bodyErr <- err
			return
		}
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		bodyErr <- err
	}()
	time.Sleep(100 * time.Millisecond) // let the stream get going

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("drain finished cleanly; expected a deadline-forced hard stop")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("drain took %v after hard stop; stragglers did not abort", took)
	}
	if err := <-bodyErr; err == nil {
		t.Fatal("hard-stopped stream delivered a clean EOF; want truncation")
	}
}

// TestModelsEndpoint checks /v1/models reflects configured sources and
// cache states, including a failed load.
func TestModelsEndpoint(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(dir+"/broken.json", []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, hs := newTestServer(t, func(c *Config) { c.ModelDir = dir })
	// Warm one good and one bad entry.
	get(t, hs.URL+"/v1/generate?workload=terasort")
	get(t, hs.URL+"/v1/generate?workload=terasort&model=broken")

	resp, body, err := get(t, hs.URL+"/v1/models")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("models: %v, status %d", err, resp.StatusCode)
	}
	var got struct {
		Default    string       `json:"default"`
		Configured []string     `json:"configured"`
		Cache      []cacheState `json:"cache"`
	}
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("models body %q: %v", body, err)
	}
	if got.Default != "bench" || len(got.Configured) != 1 || got.Configured[0] != "bench" {
		t.Fatalf("models response: %+v", got)
	}
	states := map[string]string{}
	for _, c := range got.Cache {
		states[c.Name] = c.State
	}
	if states["bench"] != "loaded" || states["broken"] != "failed" {
		t.Fatalf("cache states: %v", states)
	}
}

// TestPathTraversalRejected: model names must never escape ModelDir.
func TestPathTraversalRejected(t *testing.T) {
	_, hs := newTestServer(t, func(c *Config) { c.ModelDir = t.TempDir() })
	u := hs.URL + "/v1/generate?workload=terasort&model=" + "..%2F..%2Fetc%2Fpasswd"
	resp, _, err := get(t, u)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("traversal name: status %d, want 404", resp.StatusCode)
	}
}
