package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"keddah/internal/core"
	"keddah/internal/telemetry"
)

// errMethod reports an HTTP method an endpoint does not serve.
var errMethod = errors.New("serve: method not allowed")

// errTooLarge reports a request whose predicted schedule exceeds the
// per-request flow cap.
var errTooLarge = errors.New("serve: schedule too large")

// generateRequest is the wire form of a /v1/generate request: the model
// name, the output format, an optional per-request deadline (clamped to
// the server's RequestTimeout) and the generation spec itself.
type generateRequest struct {
	Model     string       `json:"model,omitempty"`
	Format    string       `json:"format,omitempty"`
	TimeoutMs int64        `json:"timeoutMs,omitempty"`
	Spec      core.GenSpec `json:"spec"`
}

// mixRequest is the wire form of a /v1/mix request.
type mixRequest struct {
	Model     string       `json:"model,omitempty"`
	Format    string       `json:"format,omitempty"`
	TimeoutMs int64        `json:"timeoutMs,omitempty"`
	Spec      core.MixSpec `json:"spec"`
}

// handleGenerate streams one workload's synthetic schedule.
func (s *Server) handleGenerate(w http.ResponseWriter, r *http.Request) {
	s.tel.Serve.Requests.Inc()
	req, err := parseGenerateRequest(w, r)
	if err != nil {
		s.requestError(w, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.badRequest(w, err)
		return
	}
	s.runStream(w, r, streamParams{
		model:   req.Model,
		format:  req.Format,
		timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		workers: effectiveWorkers(req.Spec.Workers),
		check: func(m *core.Model) error {
			n, err := m.EstimateFlows(req.Spec)
			if err != nil {
				return err
			}
			if n > s.cfg.MaxFlows {
				return fmt.Errorf("%w: ~%d flows exceeds the %d-flow cap", errTooLarge, n, s.cfg.MaxFlows)
			}
			return nil
		},
		run: func(ctx context.Context, m *core.Model, emit func([]core.SynthFlow) error) error {
			return m.GenerateChunks(ctx, req.Spec, s.cfg.ChunkFlows, emit)
		},
	})
}

// handleMix streams a multi-tenant Poisson job mix.
func (s *Server) handleMix(w http.ResponseWriter, r *http.Request) {
	s.tel.Serve.Requests.Inc()
	if r.Method != http.MethodPost {
		s.requestError(w, fmt.Errorf("%w: %s /v1/mix (POST only)", errMethod, r.Method))
		return
	}
	var req mixRequest
	if err := decodeJSONBody(w, r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := req.Spec.Validate(); err != nil {
		s.badRequest(w, err)
		return
	}
	s.runStream(w, r, streamParams{
		model:   req.Model,
		format:  req.Format,
		timeout: time.Duration(req.TimeoutMs) * time.Millisecond,
		workers: effectiveWorkers(req.Spec.Workers),
		run: func(ctx context.Context, m *core.Model, emit func([]core.SynthFlow) error) error {
			return m.GenerateMixChunks(ctx, req.Spec, s.cfg.ChunkFlows, emit)
		},
	})
}

// handleModels reports the model sources and cache states.
func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	configured := make([]string, 0, len(s.cfg.Models))
	for name := range s.cfg.Models {
		configured = append(configured, name)
	}
	sort.Strings(configured)
	resp := struct {
		Default    string       `json:"default,omitempty"`
		Configured []string     `json:"configured"`
		ModelDir   string       `json:"modelDir,omitempty"`
		Cache      []cacheState `json:"cache"`
	}{
		Default:    s.cfg.DefaultModel,
		Configured: configured,
		ModelDir:   s.cfg.ModelDir,
		Cache:      s.cache.states(),
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(resp)
}

// streamParams is one stream's plan: which model, which encoder, what
// deadline, and the generation closure to drive.
type streamParams struct {
	model   string
	format  string
	timeout time.Duration
	workers int // ns3 node numbering
	check   func(*core.Model) error
	run     func(context.Context, *core.Model, func([]core.SynthFlow) error) error
}

// runStream is the shared request pipeline: drain gate → admission →
// deadline wiring → model cache → pre-flight check → chunked
// generate/encode/flush with panic recovery.
func (s *Server) runStream(w http.ResponseWriter, r *http.Request, p streamParams) {
	if s.Draining() {
		s.shed(w, "draining")
		return
	}
	format := p.format
	if format == "" {
		format = "jsonl"
	}
	switch format {
	case "jsonl", "csv", "ns3":
	default:
		s.badRequest(w, fmt.Errorf("serve: unknown format %q (jsonl | csv | ns3)", format))
		return
	}
	modelName := p.model
	if modelName == "" {
		modelName = s.cfg.DefaultModel
	}
	if modelName == "" {
		s.badRequest(w, errors.New("serve: request names no model and no default is configured"))
		return
	}

	release, err := s.adm.acquire(r.Context(), s.cfg.QueueWait)
	if err != nil {
		switch {
		case errors.Is(err, errSaturated):
			s.shed(w, "worker pool and wait queue full")
		case errors.Is(err, errQueueTimeout):
			s.tel.Serve.QueueTimeouts.Inc()
			s.shed(w, "timed out waiting for a worker slot")
		default: // client vanished while queued; nobody is listening
			s.tel.Serve.ClientAborts.Inc()
		}
		return
	}
	defer release()
	if s.Draining() { // drain may have begun while this request queued
		s.shed(w, "draining")
		return
	}

	timeout := s.cfg.RequestTimeout
	if p.timeout > 0 && p.timeout < timeout {
		timeout = p.timeout
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	// A drain hard-stop aborts this stream exactly like a disconnect.
	stop := context.AfterFunc(s.hardCtx, cancel)
	defer stop()

	model, err := s.cache.get(ctx, modelName)
	if err != nil {
		s.modelError(w, err)
		return
	}
	if p.check != nil {
		if err := p.check(model); err != nil {
			if errors.Is(err, errTooLarge) {
				s.tel.Serve.BadRequests.Inc()
				s.writeJSONError(w, http.StatusRequestEntityTooLarge, err.Error())
			} else {
				s.badRequest(w, err)
			}
			return
		}
	}

	if !s.registerStream() { // authoritative drain gate: atomic with BeginDrain
		s.shed(w, "draining")
		return
	}
	defer s.unregisterStream()
	s.tel.Serve.Active.Add(1)
	s.tel.Serve.ActiveMax.SetMax(s.tel.Serve.Active.Value())
	defer s.tel.Serve.Active.Add(-1)

	mw := &meteredWriter{w: w, bytes: s.tel.Serve.BytesStreamed}
	enc, err := core.NewStreamEncoder(format, mw, p.workers)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	rc := http.NewResponseController(w)

	started := false
	defer func() {
		if rec := recover(); rec != nil {
			s.tel.Serve.Panics.Inc()
			if !started {
				s.writeJSONError(w, http.StatusInternalServerError,
					fmt.Sprintf("generation panicked: %v", rec))
				return
			}
			// Mid-stream: kill the connection so the client observes
			// truncation instead of a clean EOF. net/http swallows
			// ErrAbortHandler; the daemon keeps serving.
			panic(http.ErrAbortHandler)
		}
	}()
	if s.hook != nil {
		s.hook("generate")
	}

	emit := func(chunk []core.SynthFlow) error {
		if s.hook != nil {
			s.hook("chunk")
		}
		if !started {
			w.Header().Set("Content-Type", enc.ContentType())
			w.Header().Set("X-Keddah-Model", modelName)
			started = true
			_ = rc.SetWriteDeadline(s.cfg.now().Add(s.cfg.WriteTimeout))
			if err := enc.Begin(); err != nil {
				return err
			}
		}
		// Each chunk gets a fresh write deadline: a reader draining at any
		// reasonable pace rolls it forward forever, a stalled one is cut
		// off within WriteTimeout no matter how large the schedule is.
		_ = rc.SetWriteDeadline(s.cfg.now().Add(s.cfg.WriteTimeout))
		if err := enc.Flows(chunk); err != nil {
			return err
		}
		s.tel.Serve.FlowsStreamed.Add(int64(len(chunk)))
		return rc.Flush()
	}

	err = p.run(ctx, model, emit)
	if err == nil && !started {
		err = emit(nil) // empty schedule: still a valid header-only body
	}
	if err == nil {
		err = enc.End()
	}
	if err != nil {
		if !started {
			s.streamError(w, err)
			return
		}
		s.countAbort(err)
		panic(http.ErrAbortHandler)
	}
	_ = rc.SetWriteDeadline(time.Time{}) // clean conn back to keep-alive
	s.tel.Serve.Streams.Inc()
}

// ------------------------------------------------------------- responses

func (s *Server) writeJSONError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// shed rejects a request the daemon cannot take on right now: 503 with a
// Retry-After hint, never an unbounded queue.
func (s *Server) shed(w http.ResponseWriter, reason string) {
	s.tel.Serve.Shed.Inc()
	w.Header().Set("Retry-After", s.retryAfterSecs())
	s.writeJSONError(w, http.StatusServiceUnavailable, "overloaded: "+reason)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.tel.Serve.BadRequests.Inc()
	s.writeJSONError(w, http.StatusBadRequest, err.Error())
}

// requestError maps parse-stage failures to a status.
func (s *Server) requestError(w http.ResponseWriter, err error) {
	if errors.Is(err, errMethod) {
		s.writeJSONError(w, http.StatusMethodNotAllowed, err.Error())
		return
	}
	s.badRequest(w, err)
}

// modelError maps a model-cache failure to a status.
func (s *Server) modelError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownModel):
		s.writeJSONError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, context.Canceled):
		s.tel.Serve.ClientAborts.Inc()
	case errors.Is(err, context.DeadlineExceeded):
		s.tel.Serve.Deadlines.Inc()
		s.writeJSONError(w, http.StatusGatewayTimeout, err.Error())
	default:
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// streamError reports a generation failure that happened before the
// first body byte, where a proper status line is still possible.
func (s *Server) streamError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrBadSpec):
		s.badRequest(w, err)
	case errors.Is(err, context.DeadlineExceeded):
		s.tel.Serve.Deadlines.Inc()
		s.writeJSONError(w, http.StatusGatewayTimeout, err.Error())
	case errors.Is(err, context.Canceled):
		s.tel.Serve.ClientAborts.Inc() // client gone; nothing to write
	default:
		s.writeJSONError(w, http.StatusInternalServerError, err.Error())
	}
}

// countAbort classifies a mid-stream failure for telemetry.
func (s *Server) countAbort(err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, os.ErrDeadlineExceeded):
		// Request deadline or per-chunk write deadline (slow-loris).
		s.tel.Serve.Deadlines.Inc()
	default:
		s.tel.Serve.ClientAborts.Inc()
	}
}

// --------------------------------------------------------------- parsing

func parseGenerateRequest(w http.ResponseWriter, r *http.Request) (*generateRequest, error) {
	switch r.Method {
	case http.MethodGet:
		return genFromQuery(r)
	case http.MethodPost:
		var req generateRequest
		if err := decodeJSONBody(w, r, &req); err != nil {
			return nil, err
		}
		return &req, nil
	default:
		return nil, fmt.Errorf("%w: %s /v1/generate (GET or POST)", errMethod, r.Method)
	}
}

// decodeJSONBody decodes a bounded, strict JSON request body: unknown
// fields and trailing data are rejected, so a typo in a spec field is a
// 400 today instead of a silently defaulted parameter forever.
func decodeJSONBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("serve: decode request body: %w", err)
	}
	if dec.More() {
		return errors.New("serve: trailing data after request body")
	}
	return nil
}

// genQueryKeys is the complete GET parameter vocabulary; anything else
// is rejected rather than silently ignored.
var genQueryKeys = map[string]bool{
	"model": true, "format": true, "timeoutMs": true,
	"workload": true, "inputBytes": true, "inputGb": true,
	"blockBytes": true, "reducers": true, "workers": true,
	"jobs": true, "stagger": true, "background": true, "seed": true,
}

func genFromQuery(r *http.Request) (*generateRequest, error) {
	q := r.URL.Query()
	for k := range q {
		if !genQueryKeys[k] {
			return nil, fmt.Errorf("serve: unknown query parameter %q", k)
		}
	}
	req := &generateRequest{
		Model:  q.Get("model"),
		Format: q.Get("format"),
		Spec:   core.GenSpec{Workload: q.Get("workload")},
	}
	var err error
	geti64 := func(key string, dst *int64) {
		if v := q.Get(key); v != "" && err == nil {
			if *dst, err = strconv.ParseInt(v, 10, 64); err != nil {
				err = fmt.Errorf("serve: query %s=%q: %w", key, v, err)
			}
		}
	}
	geti := func(key string, dst *int) {
		if v := q.Get(key); v != "" && err == nil {
			if *dst, err = strconv.Atoi(v); err != nil {
				err = fmt.Errorf("serve: query %s=%q: %w", key, v, err)
			}
		}
	}
	getf := func(key string, dst *float64) {
		if v := q.Get(key); v != "" && err == nil {
			if *dst, err = strconv.ParseFloat(v, 64); err != nil {
				err = fmt.Errorf("serve: query %s=%q: %w", key, v, err)
			}
		}
	}
	geti64("timeoutMs", &req.TimeoutMs)
	geti64("inputBytes", &req.Spec.InputBytes)
	geti64("blockBytes", &req.Spec.BlockSize)
	geti("reducers", &req.Spec.Reducers)
	geti("workers", &req.Spec.Workers)
	geti("jobs", &req.Spec.Jobs)
	getf("stagger", &req.Spec.Stagger)
	geti64("seed", &req.Spec.Seed)
	var inputGb float64
	getf("inputGb", &inputGb)
	if v := q.Get("background"); v != "" && err == nil {
		if req.Spec.IncludeBackground, err = strconv.ParseBool(v); err != nil {
			err = fmt.Errorf("serve: query background=%q: %w", v, err)
		}
	}
	if err != nil {
		return nil, err
	}
	if inputGb != 0 && req.Spec.InputBytes == 0 {
		req.Spec.InputBytes = int64(inputGb * float64(1<<30))
	}
	return req, nil
}

// effectiveWorkers mirrors the GenSpec/MixSpec default so ns3 node
// numbering matches what generation will actually use.
func effectiveWorkers(w int) int {
	if w <= 0 {
		return 16
	}
	return w
}

// meteredWriter counts encoded bytes as they hit the wire.
type meteredWriter struct {
	w     io.Writer
	bytes *telemetry.Counter
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	n, err := m.w.Write(p)
	m.bytes.Add(int64(n))
	return n, err
}
