package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"keddah/internal/telemetry"
)

func newTestAdmission(workers, queue int) (*admission, *telemetry.ServeMetrics) {
	tel := telemetry.New()
	return newAdmission(workers, queue, &tel.Serve), &tel.Serve
}

func TestAdmissionImmediateSlot(t *testing.T) {
	a, _ := newTestAdmission(2, 0)
	rel1, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Pool full, no queue: immediate shed.
	if _, err := a.acquire(context.Background(), time.Second); !errors.Is(err, errSaturated) {
		t.Fatalf("full pool with zero queue: %v, want errSaturated", err)
	}
	rel1()
	rel1() // idempotent: must not return the slot twice
	if _, err := a.acquire(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("after release: %v", err)
	}
	if _, err := a.acquire(context.Background(), time.Millisecond); !errors.Is(err, errSaturated) {
		t.Fatal("double release handed out an extra slot")
	}
	rel2()
}

func TestAdmissionQueueHandoff(t *testing.T) {
	a, m := newTestAdmission(1, 2)
	rel, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		rel2, err := a.acquire(context.Background(), 5*time.Second)
		if err == nil {
			rel2()
		}
		got <- err
	}()
	// Wait until the waiter occupies the queue.
	deadline := time.Now().Add(2 * time.Second)
	for m.QueueDepth.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	rel()
	if err := <-got; err != nil {
		t.Fatalf("queued waiter after release: %v", err)
	}
	if m.QueueDepthMax.Value() < 1 {
		t.Error("queue depth high-water mark not recorded")
	}
	if m.QueueDepth.Value() != 0 {
		t.Errorf("queue depth %v after handoff, want 0", m.QueueDepth.Value())
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a, _ := newTestAdmission(1, 1)
	rel, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := a.acquire(context.Background(), 30*time.Millisecond); !errors.Is(err, errQueueTimeout) {
		t.Fatalf("queued past maxWait: %v, want errQueueTimeout", err)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("timed out before maxWait elapsed")
	}
}

func TestAdmissionQueueSaturation(t *testing.T) {
	a, m := newTestAdmission(1, 1)
	rel, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.acquire(context.Background(), time.Second)
	}()
	deadline := time.Now().Add(2 * time.Second)
	for m.QueueDepth.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never queued")
		}
		time.Sleep(time.Millisecond)
	}
	// Slot held, queue position held: the next caller is shed at once.
	if _, err := a.acquire(context.Background(), time.Second); !errors.Is(err, errSaturated) {
		t.Fatalf("saturated: %v, want errSaturated", err)
	}
	<-done
}

func TestAdmissionCallerGone(t *testing.T) {
	a, _ := newTestAdmission(1, 1)
	rel, err := a.acquire(context.Background(), time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := a.acquire(ctx, time.Minute); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v, want context.Canceled", err)
	}
}
