package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"keddah/internal/telemetry"
)

// Admission control: a fixed pool of worker slots plus a bounded wait
// queue, both plain buffered channels. A request either takes a free
// slot immediately, waits in the queue (bounded in both depth and time),
// or is shed. Nothing here can grow with offered load — that is the
// point: under overload the daemon's memory stays constant and clients
// get a fast, honest 503 instead of a timeout from a queue they can
// never clear.

// errSaturated reports a full pool and full queue: shed immediately.
var errSaturated = errors.New("serve: worker pool and wait queue full")

// errQueueTimeout reports a waiter that outlived QueueWait: shed late.
var errQueueTimeout = errors.New("serve: timed out waiting for a worker slot")

type admission struct {
	slots  chan struct{} // a buffered token per free worker slot
	queued chan struct{} // a buffered token per occupied queue position
	m      *telemetry.ServeMetrics
}

func newAdmission(workers, queue int, m *telemetry.ServeMetrics) *admission {
	a := &admission{
		slots:  make(chan struct{}, workers),
		queued: make(chan struct{}, queue),
		m:      m,
	}
	for i := 0; i < workers; i++ {
		a.slots <- struct{}{}
	}
	return a
}

// acquire obtains a worker slot, waiting in the bounded queue for at
// most maxWait. On success the returned release function (idempotent)
// returns the slot. Failure is errSaturated (queue full), errQueueTimeout
// (waited maxWait), or ctx.Err() (caller gone while waiting).
func (a *admission) acquire(ctx context.Context, maxWait time.Duration) (func(), error) {
	select {
	case <-a.slots:
		return a.releaseFunc(), nil
	default:
	}
	// Pool busy: claim a queue position or shed. A zero-capacity queue
	// makes this send always fail — immediate shedding.
	select {
	case a.queued <- struct{}{}:
	default:
		return nil, errSaturated
	}
	a.m.QueueDepth.Add(1)
	a.m.QueueDepthMax.SetMax(a.m.QueueDepth.Value())
	defer func() {
		<-a.queued
		a.m.QueueDepth.Add(-1)
	}()
	timer := time.NewTimer(maxWait)
	defer timer.Stop()
	select {
	case <-a.slots:
		return a.releaseFunc(), nil
	case <-timer.C:
		return nil, errQueueTimeout
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (a *admission) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() { a.slots <- struct{}{} })
	}
}
