package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// loadReport is the machine-readable artifact the CI smoke job uploads.
type loadReport struct {
	Streams       int     `json:"streams"`
	Completed     int64   `json:"completed"`
	Shed          int64   `json:"shed"`
	Bytes         int64   `json:"bytesStreamed"`
	Flows         int64   `json:"flowsStreamed"`
	MaxActive     int64   `json:"maxActive"`
	MaxQueueDepth int64   `json:"maxQueueDepth"`
	GoroutineBase int     `json:"goroutineBase"`
	GoroutineEnd  int     `json:"goroutineEnd"`
	ElapsedMs     int64   `json:"elapsedMs"`
	P50TTFBMs     float64 `json:"p50TTFBMs"`
	P99TTFBMs     float64 `json:"p99TTFBMs"`
}

// runWave fires n concurrent streams and returns how many completed with
// a 200 and a clean full read vs were shed with a 503, plus the sorted
// client-side time-to-first-byte (ms) of every completed stream. TTFB
// covers queue wait plus the first generation chunk, so its tail is the
// latency a caller actually experiences under admission control.
func runWave(t *testing.T, client *http.Client, base string, n int) (completed, shed int64, ttfbMs []float64) {
	t.Helper()
	var wg sync.WaitGroup
	var ok, sh atomic.Int64
	// One pre-sized slot per stream: -1 marks shed/failed streams so the
	// goroutines never contend on an append.
	ttfbs := make([]float64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			ttfbs[seed] = -1
			url := fmt.Sprintf("%s/v1/generate?workload=terasort&seed=%d", base, seed)
			start := time.Now()
			resp, err := client.Get(url)
			if err != nil {
				t.Errorf("stream %d: %v", seed, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var first [1]byte
				if _, err := io.ReadFull(resp.Body, first[:]); err != nil {
					t.Errorf("stream %d: first byte: %v", seed, err)
					return
				}
				ttfbs[seed] = float64(time.Since(start)) / float64(time.Millisecond)
				if _, err := io.Copy(io.Discard, resp.Body); err != nil {
					t.Errorf("stream %d truncated: %v", seed, err)
					return
				}
				ok.Add(1)
			case http.StatusServiceUnavailable:
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("stream %d: 503 without Retry-After", seed)
				}
				sh.Add(1)
			default:
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("stream %d: status %d: %s", seed, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	for _, v := range ttfbs {
		if v >= 0 {
			ttfbMs = append(ttfbMs, v)
		}
	}
	sort.Float64s(ttfbMs)
	return ok.Load(), sh.Load(), ttfbMs
}

// pct returns the p-th percentile (nearest-rank) of an ascending slice.
func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p/100*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// waitGoroutines polls until the goroutine count settles near base.
func waitGoroutines(t *testing.T, base int) int {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	n := runtime.NumGoroutine()
	for n > base+10 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
		n = runtime.NumGoroutine()
	}
	return n
}

// TestServeLoadSmoke is the CI load job: a couple hundred concurrent
// streams through a modest pool, every one either completed in full or
// honestly shed, no goroutines left behind, telemetry non-empty. A JSON
// report lands wherever KEDDAH_LOADTEST_REPORT points.
func TestServeLoadSmoke(t *testing.T) {
	goroutineBase := runtime.NumGoroutine()
	s, hs := newTestServer(t, func(c *Config) {
		c.MaxStreams = 32
		c.MaxQueue = 256
		c.QueueWait = 30 * time.Second
		c.ChunkFlows = 256
	})
	const n = 200
	start := time.Now()
	completed, shed, ttfbs := runWave(t, hs.Client(), hs.URL, n)
	elapsed := time.Since(start)

	if completed+shed != n {
		t.Fatalf("%d completed + %d shed != %d launched", completed, shed, n)
	}
	if completed == 0 {
		t.Fatal("no stream completed")
	}
	// Tail-latency gate: every admitted stream must see its first byte
	// well inside the 30 s queue-wait budget. A p99 TTFB regression here
	// fails the CI serve-smoke job before users would feel it.
	p50TTFB, p99TTFB := pct(ttfbs, 50), pct(ttfbs, 99)
	if p99TTFB <= 0 {
		t.Error("p99 TTFB not measured")
	}
	if limit := 15_000.0; p99TTFB >= limit {
		t.Errorf("p99 TTFB %.0f ms breaches the %0.f ms gate (queue wait budget %v)", p99TTFB, limit, 30*time.Second)
	}
	if got := s.tel.Serve.Streams.Value(); got != completed {
		t.Errorf("streams counter = %d, client saw %d completions", got, completed)
	}
	if s.tel.Serve.FlowsStreamed.Value() == 0 || s.tel.Serve.BytesStreamed.Value() == 0 {
		t.Error("flow/byte counters empty after load")
	}

	// Telemetry snapshot must be non-empty and carry the serve metrics.
	var snap bytes.Buffer
	if err := s.tel.WriteJSON(&snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap.Bytes(), []byte("keddah_serve_requests_total")) {
		t.Errorf("telemetry snapshot missing serve metrics: %.200s", snap.String())
	}

	hs.Close() // idempotent with the cleanup; frees client conns now
	goroutineEnd := waitGoroutines(t, goroutineBase)
	if goroutineEnd > goroutineBase+10 {
		t.Errorf("goroutine leak: %d before load, %d after", goroutineBase, goroutineEnd)
	}

	if path := os.Getenv("KEDDAH_LOADTEST_REPORT"); path != "" {
		report := loadReport{
			Streams:       n,
			Completed:     completed,
			Shed:          shed,
			Bytes:         s.tel.Serve.BytesStreamed.Value(),
			Flows:         s.tel.Serve.FlowsStreamed.Value(),
			MaxActive:     int64(s.tel.Serve.ActiveMax.Value()),
			MaxQueueDepth: int64(s.tel.Serve.QueueDepthMax.Value()),
			GoroutineBase: goroutineBase,
			GoroutineEnd:  goroutineEnd,
			ElapsedMs:     elapsed.Milliseconds(),
			P50TTFBMs:     p50TTFB,
			P99TTFBMs:     p99TTFB,
		}
		data, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Errorf("write load report: %v", err)
		}
	}
}

// TestServeLoad1kFlatRSS drives 1k streams in waves and checks heap use
// does not grow wave over wave: chunked generation plus streaming encode
// means serving the 1000th stream costs what the 1st did.
func TestServeLoad1kFlatRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-stream load test skipped in -short")
	}
	_, hs := newTestServer(t, func(c *Config) {
		c.MaxStreams = 64
		c.MaxQueue = 512
		c.QueueWait = 60 * time.Second
		c.RequestTimeout = 120 * time.Second
		c.ChunkFlows = 512
	})
	client := hs.Client()
	client.Timeout = 120 * time.Second

	heapAfter := func() uint64 {
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}

	const wave = 250
	if c, sh, _ := runWave(t, client, hs.URL, wave); c+sh != wave {
		t.Fatalf("warm-up wave lost streams: %d + %d", c, sh)
	}
	h1 := heapAfter()
	for i := 0; i < 3; i++ { // 750 more streams → 1000 total
		if c, sh, _ := runWave(t, client, hs.URL, wave); c+sh != wave {
			t.Fatalf("wave %d lost streams: %d + %d", i+2, c, sh)
		}
	}
	h2 := heapAfter()

	// Flat means no per-stream residue: allow generous slack for GC
	// timing, but 1k streams must not trend the heap upward.
	limit := h1*2 + 64<<20
	if h2 > limit {
		t.Fatalf("heap grew across waves: %d B after wave 1, %d B after wave 4 (limit %d)", h1, h2, limit)
	}
	t.Logf("heap after wave 1: %.1f MiB, after 1k streams: %.1f MiB",
		float64(h1)/(1<<20), float64(h2)/(1<<20))
}
