package serve

import (
	"context"
	"fmt"
	"sort"
	"time"

	"keddah/internal/core"
	"keddah/internal/telemetry"
	"sync"
)

// The model-handle cache. Fitted model JSON is immutable once loaded, so
// a handle is cached forever on success; the interesting engineering is
// the failure path. Loads are single-flight — N concurrent requests for
// a cold model trigger one disk read, the rest wait on the same entry —
// and a failed load is negative-cached with a TTL, so a corrupt or
// missing file answers instantly (no disk hammering) but heals without a
// restart once the file is fixed. A panicking loader is converted into a
// load error: one hostile model file cannot take the daemon down, and it
// poisons only its own cache key.

type modelCache struct {
	mu      sync.Mutex
	entries map[string]*modelEntry
	load    func(name string) (*core.Model, error)
	negTTL  time.Duration
	now     func() time.Time
	m       *telemetry.ServeMetrics
}

type modelEntry struct {
	ready chan struct{} // closed once model/err are final
	model *core.Model
	err   error
	retry time.Time // negative entries: earliest reload time
}

func newModelCache(load func(string) (*core.Model, error), negTTL time.Duration, now func() time.Time, m *telemetry.ServeMetrics) *modelCache {
	return &modelCache{
		entries: make(map[string]*modelEntry),
		load:    load,
		negTTL:  negTTL,
		now:     now,
		m:       m,
	}
}

// get returns the cached handle for name, loading at most once
// concurrently. Waiting on someone else's in-flight load respects ctx;
// the load itself is never cancelled (the next caller would only have to
// redo it).
func (c *modelCache) get(ctx context.Context, name string) (*core.Model, error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[name]
		if !ok {
			e = &modelEntry{ready: make(chan struct{})}
			c.entries[name] = e
			c.mu.Unlock()
			c.resolve(e, name)
			return e.model, e.err
		}
		c.mu.Unlock()

		select {
		case <-e.ready:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if e.err == nil {
			return e.model, nil
		}
		// Negative entry: answer from cache inside the TTL, retry after.
		c.mu.Lock()
		if c.entries[name] == e {
			if c.now().Before(e.retry) {
				c.mu.Unlock()
				return nil, e.err
			}
			delete(c.entries, name)
		}
		c.mu.Unlock()
		// Loop: the next iteration creates (or joins) a fresh entry.
	}
}

// resolve runs the loader and publishes the outcome exactly once.
func (c *modelCache) resolve(e *modelEntry, name string) {
	defer close(e.ready)
	defer func() {
		if r := recover(); r != nil {
			e.model = nil
			e.err = fmt.Errorf("serve: model %q load panicked: %v", name, r)
			e.retry = c.now().Add(c.negTTL)
			c.m.ModelErrors.Inc()
		}
	}()
	m, err := c.load(name)
	if err != nil {
		e.err = err
		e.retry = c.now().Add(c.negTTL)
		c.m.ModelErrors.Inc()
		return
	}
	e.model = m
	c.m.ModelLoads.Inc()
}

// cacheState is one entry's externally visible condition.
type cacheState struct {
	Name  string `json:"name"`
	State string `json:"state"` // "loading", "loaded" or "failed"
	Error string `json:"error,omitempty"`
}

// states snapshots the cache for /v1/models, sorted by name.
func (c *modelCache) states() []cacheState {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cacheState, 0, len(c.entries))
	for name, e := range c.entries {
		st := cacheState{Name: name}
		select {
		case <-e.ready:
			if e.err != nil {
				st.State = "failed"
				st.Error = e.err.Error()
			} else {
				st.State = "loaded"
			}
		default:
			st.State = "loading"
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
