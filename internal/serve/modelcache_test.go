package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"keddah/internal/core"
	"keddah/internal/telemetry"
)

// TestModelCacheSingleFlight: N concurrent requests for a cold model
// must trigger exactly one load, and all callers get the same handle.
func TestModelCacheSingleFlight(t *testing.T) {
	var loads atomic.Int32
	gate := make(chan struct{})
	shared := &core.Model{}
	tel := telemetry.New()
	c := newModelCache(func(string) (*core.Model, error) {
		loads.Add(1)
		<-gate
		return shared, nil
	}, time.Second, time.Now, &tel.Serve)

	const n = 16
	models := make([]*core.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := c.get(context.Background(), "bench")
			if err != nil {
				t.Error(err)
			}
			models[i] = m
		}(i)
	}
	time.Sleep(20 * time.Millisecond) // let everyone pile onto the entry
	close(gate)
	wg.Wait()
	if got := loads.Load(); got != 1 {
		t.Fatalf("%d loads for one model, want 1 (single-flight)", got)
	}
	for i, m := range models {
		if m != shared {
			t.Fatalf("caller %d got a different handle", i)
		}
	}
	if tel.Serve.ModelLoads.Value() != 1 {
		t.Errorf("model load counter = %d, want 1", tel.Serve.ModelLoads.Value())
	}
}

// TestModelCacheNegativeTTL: a failed load is answered from cache inside
// the TTL (no disk hammering) and retried after it expires (heals
// without a restart).
func TestModelCacheNegativeTTL(t *testing.T) {
	now := time.Unix(1000, 0)
	var loads int
	fail := true
	tel := telemetry.New()
	c := newModelCache(func(string) (*core.Model, error) {
		loads++
		if fail {
			return nil, errors.New("disk says no")
		}
		return &core.Model{}, nil
	}, 5*time.Second, func() time.Time { return now }, &tel.Serve)

	if _, err := c.get(context.Background(), "m"); err == nil {
		t.Fatal("expected the load failure")
	}
	now = now.Add(2 * time.Second) // inside the TTL
	if _, err := c.get(context.Background(), "m"); err == nil || !strings.Contains(err.Error(), "disk says no") {
		t.Fatalf("inside TTL: %v, want the cached failure", err)
	}
	if loads != 1 {
		t.Fatalf("%d loads inside the TTL, want 1", loads)
	}
	now = now.Add(4 * time.Second) // past the TTL
	fail = false
	m, err := c.get(context.Background(), "m")
	if err != nil || m == nil {
		t.Fatalf("after TTL: %v", err)
	}
	if loads != 2 {
		t.Fatalf("%d loads total, want 2 (one retry after TTL)", loads)
	}
	// The healed entry is now permanent.
	if _, err := c.get(context.Background(), "m"); err != nil || loads != 2 {
		t.Fatalf("healed entry reloaded: %v, loads=%d", err, loads)
	}
	if tel.Serve.ModelErrors.Value() != 1 {
		t.Errorf("model error counter = %d, want 1", tel.Serve.ModelErrors.Value())
	}
}

// TestModelCachePanickingLoader: a loader panic becomes a load error on
// one key; it never unwinds into the caller.
func TestModelCachePanickingLoader(t *testing.T) {
	tel := telemetry.New()
	c := newModelCache(func(name string) (*core.Model, error) {
		if name == "hostile" {
			panic("corrupt beyond parsing")
		}
		return &core.Model{}, nil
	}, time.Minute, time.Now, &tel.Serve)

	_, err := c.get(context.Background(), "hostile")
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("panicking loader: %v, want a panic-wrapping error", err)
	}
	// Other keys are unaffected.
	if _, err := c.get(context.Background(), "fine"); err != nil {
		t.Fatalf("healthy key after hostile one: %v", err)
	}
}

// TestModelCacheWaiterCancellation: waiting on someone else's load
// respects the waiter's context.
func TestModelCacheWaiterCancellation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	tel := telemetry.New()
	c := newModelCache(func(string) (*core.Model, error) {
		<-gate
		return &core.Model{}, nil
	}, time.Second, time.Now, &tel.Serve)

	go c.get(context.Background(), "slow") // the loading owner
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.get(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled waiter: %v, want deadline exceeded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("waiter did not respect its context")
	}
}
