// Package keddah is a toolchain for capturing, modelling and reproducing
// Hadoop network traffic, after "Keddah: Capturing Hadoop Network
// Behaviour" (Deng, Tyson, Cuadrado, Uhlig — ICDCS 2017).
//
// The pipeline has four stages:
//
//  1. Capture — run MapReduce workloads on a simulated Hadoop 2.x cluster
//     (HDFS + YARN + MapReduce over a flow-level network simulator) and
//     record every flow, exactly as tcpdump-based capture does on a
//     physical testbed.
//  2. Fit — classify flows into Hadoop traffic components (HDFS read,
//     HDFS write, shuffle, control) by the well-known port map and fit
//     empirical distributions to per-phase flow sizes, counts and
//     arrival processes.
//  3. Generate — produce synthetic flow schedules from a fitted model at
//     any input size, reducer fan-in or job mix.
//  4. Replay / Validate — run schedules on arbitrary fabrics and compare
//     generated traffic against measured traffic (KS distances, volume
//     errors).
//
// A minimal end-to-end use:
//
//	ts, _, err := keddah.Capture(keddah.ClusterSpec{Workers: 16, Seed: 1},
//	    []keddah.RunSpec{{Profile: "terasort", InputBytes: 8 << 30}})
//	model, err := keddah.Fit(ts, keddah.FitOptions{})
//	sched, err := model.Generate(keddah.GenSpec{Workload: "terasort", Workers: 64})
//	records, makespan, err := keddah.Replay(sched, keddah.ClusterSpec{
//	    Topology: "fattree", FatTreeK: 8})
//
// See the examples directory for complete programs.
package keddah

import (
	"keddah/internal/coflow"
	"keddah/internal/core"
	"keddah/internal/flows"
	"keddah/internal/pcap"
	"keddah/internal/workload"
)

// Re-exported pipeline types. The implementation lives in internal/core;
// these aliases are the supported public API.
type (
	// ClusterSpec describes the testbed fabric and Hadoop configuration.
	ClusterSpec = core.ClusterSpec
	// RunSpec requests one workload execution during capture.
	RunSpec = workload.RunSpec
	// TraceSet is a measurement corpus: per-job flow records plus
	// cluster background traffic.
	TraceSet = core.TraceSet
	// Run is the captured traffic of one job execution.
	Run = core.Run
	// Model is a fitted Keddah model library.
	Model = core.Model
	// JobModel is one workload's fitted traffic model.
	JobModel = core.JobModel
	// PhaseModel is one traffic component's fitted laws.
	PhaseModel = core.PhaseModel
	// FitOptions tunes the modelling stage.
	FitOptions = core.FitOptions
	// GenSpec parameterises synthetic traffic generation.
	GenSpec = core.GenSpec
	// SynthFlow is one generated transfer.
	SynthFlow = core.SynthFlow
	// MixSpec parameterises multi-tenant Poisson job-mix generation.
	MixSpec = core.MixSpec
	// MixSummary reports a mix schedule's composition.
	MixSummary = core.MixSummary
	// Validation reports measured-vs-generated fidelity.
	Validation = core.Validation
	// PhaseComparison is one phase's row in a Validation.
	PhaseComparison = core.PhaseComparison
	// FlowRecord is a reassembled flow.
	FlowRecord = pcap.FlowRecord
	// Phase is a Hadoop traffic component.
	Phase = flows.Phase
)

// Traffic component identifiers.
const (
	PhaseHDFSRead  = flows.PhaseHDFSRead
	PhaseHDFSWrite = flows.PhaseHDFSWrite
	PhaseShuffle   = flows.PhaseShuffle
	PhaseControl   = flows.PhaseControl
)

// Failure-injection types for degraded-cluster capture sessions.
type (
	// CaptureOpts extends Capture with failure injection.
	CaptureOpts = core.CaptureOpts
	// FailureSpec kills one worker (DataNode + NodeManager) mid-session.
	FailureSpec = core.FailureSpec
)

// Capture runs workloads on a simulated cluster and returns the captured
// corpus (stage 1 of the toolchain).
var Capture = core.Capture

// CaptureWith is Capture with failure injection and session options.
var CaptureWith = core.CaptureWith

// Fit builds the empirical traffic model from a corpus (stage 2).
var Fit = core.Fit

// Replay runs a synthetic schedule on a fabric and returns the captured
// flow records plus the simulated makespan (stage 4).
var Replay = core.Replay

// Validate compares measured and generated flow records phase by phase.
var Validate = core.Validate

// ReadTraceSet / ReadModel deserialise toolchain artefacts.
var (
	ReadTraceSet = core.ReadTraceSet
	ReadModel    = core.ReadModel
)

// Schedule exports for external simulators (the ns-3 integration path).
var (
	// ExportCSV / ImportCSV round-trip a schedule through CSV.
	ExportCSV = core.ExportCSV
	ImportCSV = core.ImportCSV
	// ExportNS3 writes the keddah-ns3 replay-driver format.
	ExportNS3 = core.ExportNS3
)

// SummarizeMix aggregates a mix schedule by workload.
var SummarizeMix = core.SummarizeMix

// ScheduleFromRecords converts measured flow records into a replayable
// schedule — trace-driven simulation, the model-free alternative to
// Generate.
var ScheduleFromRecords = core.ScheduleFromRecords

// Coflow analysis: each job's shuffle stage viewed as a coflow, the
// structure coflow-scheduling research consumes.
type (
	// Coflow summarises one job's shuffle stage.
	Coflow = coflow.Coflow
	// CoflowPopulation holds width/size/skew/CCT distributions.
	CoflowPopulation = coflow.Population
)

// Coflows extracts one coflow per job from labelled flow records.
var Coflows = coflow.FromRecords

// DescribeCoflows computes population statistics over coflows.
var DescribeCoflows = coflow.Describe

// Workloads lists the built-in benchmark profiles.
func Workloads() []string { return workload.Names() }
