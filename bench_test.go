// Bench targets for every reproduced table/figure (E1–E15) and ablation
// (A1–A3): each BenchmarkExp* executes the corresponding experiment
// pipeline end to end at reduced scale (Scale=1/32 ⇒ megabyte-sized
// inputs; the flow structure is identical, only byte counts shrink).
// Regenerate the full paper-scale tables with:
//
//	go run ./cmd/keddah-bench -exp all
//
// The Benchmark{Netsim,Stats,Pcap,…} targets below measure the toolchain
// stages themselves (experiment E10's micro view).
package keddah_test

import (
	"bytes"
	"testing"

	"keddah"
	"keddah/internal/benchcases"
	"keddah/internal/experiments"
	"keddah/internal/pcap"
	"keddah/internal/stats"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := experiments.Config{Scale: 1.0 / 32, Seed: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tables, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
	}
}

func BenchmarkExpE1VolumeVsInput(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkExpE2FlowCounts(b *testing.B)         { benchExperiment(b, "E2") }
func BenchmarkExpE3SizeCDFs(b *testing.B)           { benchExperiment(b, "E3") }
func BenchmarkExpE4ReplicationSweep(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkExpE5BlockSizeSweep(b *testing.B)     { benchExperiment(b, "E5") }
func BenchmarkExpE6ReducerSweep(b *testing.B)       { benchExperiment(b, "E6") }
func BenchmarkExpE7ModelFit(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkExpE8Validation(b *testing.B)         { benchExperiment(b, "E8") }
func BenchmarkExpE9FabricReplay(b *testing.B)       { benchExperiment(b, "E9") }
func BenchmarkExpE10ToolchainOverhead(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkExpE11FailureTraffic(b *testing.B)    { benchExperiment(b, "E11") }
func BenchmarkExpE12MultiTenantMix(b *testing.B)    { benchExperiment(b, "E12") }
func BenchmarkExpE13Coflows(b *testing.B)           { benchExperiment(b, "E13") }
func BenchmarkExpE14Utilization(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkExpE15ScalingValidation(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkAblationA4Sampling(b *testing.B)      { benchExperiment(b, "A4") }
func BenchmarkAblationA1Locality(b *testing.B)      { benchExperiment(b, "A1") }
func BenchmarkAblationA2FairSharing(b *testing.B)   { benchExperiment(b, "A2") }
func BenchmarkAblationA3FamilyLibrary(b *testing.B) { benchExperiment(b, "A3") }

// BenchmarkCaptureTerasort measures the full cluster-simulation capture
// path (the toolchain's stage 1) for a 256 MiB terasort. The body lives
// in internal/benchcases so cmd/keddah-bench -benchjson measures the
// identical workload.
func BenchmarkCaptureTerasort(b *testing.B) { benchcases.CaptureTerasort(b) }

// BenchmarkCaptureTerasortTCP is the same capture under the flow-level
// TCP transport (body shared via internal/benchcases).
func BenchmarkCaptureTerasortTCP(b *testing.B) { benchcases.CaptureTerasortTCP(b) }

// BenchmarkNetsimFanIn measures flow-level simulation throughput: 512
// flows converging on 16 hosts with max-min reallocation at every
// arrival and departure (body shared via internal/benchcases).
func BenchmarkNetsimFanIn(b *testing.B) { benchcases.NetsimFanIn(b) }

// BenchmarkNetsimFanInTCP is the same fan-in paced by the TCP window
// state machine (body shared via internal/benchcases).
func BenchmarkNetsimFanInTCP(b *testing.B) { benchcases.NetsimFanInTCP(b) }

// BenchmarkFitSelection measures distribution model selection over a
// 100k-sample flow-size population (E10's fitting-cost claim).
func BenchmarkFitSelection(b *testing.B) {
	rng := stats.NewRNG(1)
	lgn, err := stats.NewLogNormal(17, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	xs := make([]float64, 100_000)
	for i := range xs {
		xs[i] = lgn.Sample(rng)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := stats.SelectBest(xs, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKSTwoSample measures the validation comparator on 10k-sample
// pairs.
func BenchmarkKSTwoSample(b *testing.B) {
	rng := stats.NewRNG(2)
	mk := func() []float64 {
		out := make([]float64, 10_000)
		for i := range out {
			out[i] = rng.NormFloat64()
		}
		return out
	}
	x, y := mk(), mk()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		stats.KSStatistic2(x, y)
	}
}

// BenchmarkTraceRoundTrip measures packet-trace IO (write + read back)
// for 100k records.
func BenchmarkTraceRoundTrip(b *testing.B) {
	pkt := pcap.Packet{TsNs: 1, Src: pcap.HostAddr(1), Dst: pcap.HostAddr(2),
		SrcPort: 1000, DstPort: 13562, Len: 1448, Proto: pcap.ProtoTCP, Flags: pcap.FlagACK}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w, err := pcap.NewWriter(&buf)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 100_000; j++ {
			if err := w.WritePacket(pkt); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
		r, err := pcap.NewReader(&buf)
		if err != nil {
			b.Fatal(err)
		}
		got, err := r.ReadAll()
		if err != nil {
			b.Fatal(err)
		}
		if len(got) != 100_000 {
			b.Fatal("lost packets")
		}
	}
}

// BenchmarkGenerateSchedule measures synthetic-traffic generation from a
// fitted model (stage 3), amortising the one-off capture+fit.
func BenchmarkGenerateSchedule(b *testing.B) {
	ts, _, err := keddah.Capture(keddah.ClusterSpec{Workers: 16, Seed: 5},
		[]keddah.RunSpec{
			{Profile: "terasort", InputBytes: 512 << 20, JobName: "a", InputPath: "/d"},
			{Profile: "terasort", InputBytes: 512 << 20, JobName: "b", InputPath: "/d"},
		})
	if err != nil {
		b.Fatal(err)
	}
	model, err := keddah.Fit(ts, keddah.FitOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sched, err := model.Generate(keddah.GenSpec{
			Workload: "terasort", InputBytes: 8 << 30, Workers: 64, Jobs: 4, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(sched) == 0 {
			b.Fatal("empty schedule")
		}
	}
}

// BenchmarkFitTerasort measures the full modelling stage (stage 2) over
// a two-run terasort corpus: pooling, per-phase model selection across
// the candidate families, and goodness-of-fit evaluation (body shared
// via internal/benchcases so the CI gate measures the same workload).
func BenchmarkFitTerasort(b *testing.B) { benchcases.FitTerasort(b) }

// BenchmarkClassifyDataset measures dataset construction plus the
// per-phase series extraction the fit stage leans on (body shared via
// internal/benchcases).
func BenchmarkClassifyDataset(b *testing.B) { benchcases.ClassifyDataset(b) }

// BenchmarkReplayFatTree measures schedule replay on a k=4 fat-tree
// (stage 4; body shared via internal/benchcases).
func BenchmarkReplayFatTree(b *testing.B) { benchcases.ReplayFatTree(b) }

// BenchmarkReplayFatTreeTelemetry is BenchmarkReplayFatTree with a live
// telemetry sink attached; the ns/op delta against the bare benchmark
// bounds the instrumentation overhead (body shared via
// internal/benchcases).
func BenchmarkReplayFatTreeTelemetry(b *testing.B) { benchcases.ReplayFatTreeTelemetry(b) }
