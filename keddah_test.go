package keddah_test

import (
	"bytes"
	"testing"

	"keddah"
)

// capture runs a small terasort corpus through the public API.
func capture(t *testing.T, seed int64) *keddah.TraceSet {
	t.Helper()
	ts, results, err := keddah.Capture(keddah.ClusterSpec{Workers: 8, Seed: seed},
		[]keddah.RunSpec{
			{Profile: "terasort", InputBytes: 512 << 20, JobName: "a", InputPath: "/d"},
			{Profile: "terasort", InputBytes: 512 << 20, JobName: "b", InputPath: "/d"},
		})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	return ts
}

func TestPublicPipeline(t *testing.T) {
	ts := capture(t, 1)
	model, err := keddah.Fit(ts, keddah.FitOptions{})
	if err != nil {
		t.Fatalf("fit: %v", err)
	}
	sched, err := model.Generate(keddah.GenSpec{Workload: "terasort", Workers: 8, Jobs: 2, Seed: 4})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	gen, makespan, err := keddah.Replay(sched, keddah.ClusterSpec{Workers: 8, Seed: 4})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if makespan <= 0 || len(gen) == 0 {
		t.Fatal("replay produced nothing")
	}
	var measured []keddah.FlowRecord
	for _, r := range ts.Runs {
		measured = append(measured, r.Records...)
	}
	v := keddah.Validate("terasort", measured, gen)
	if len(v.Phases) == 0 {
		t.Fatal("no validation rows")
	}
	for _, pc := range v.Phases {
		if pc.Phase == keddah.PhaseShuffle && pc.SizeKS > 0.5 {
			t.Errorf("shuffle size KS = %v", pc.SizeKS)
		}
	}
}

func TestPublicWorkloadsList(t *testing.T) {
	wl := keddah.Workloads()
	if len(wl) != 9 {
		t.Fatalf("workloads = %v", wl)
	}
}

func TestPublicFailureCapture(t *testing.T) {
	ts, results, err := keddah.CaptureWith(keddah.ClusterSpec{Workers: 8, Seed: 9},
		[]keddah.RunSpec{{Profile: "sort", InputBytes: 512 << 20}},
		keddah.CaptureOpts{Failures: []keddah.FailureSpec{{WorkerIndex: 2, AtNs: 15_000_000_000}}})
	if err != nil {
		t.Fatalf("capture with failure: %v", err)
	}
	if results[0].Rounds[0].Failed {
		t.Fatal("job failed")
	}
	if ts.Stats.ReReplicatedBlocks == 0 {
		t.Error("no re-replication recorded")
	}
}

func TestPublicScheduleExports(t *testing.T) {
	ts := capture(t, 3)
	model, err := keddah.Fit(ts, keddah.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := model.Generate(keddah.GenSpec{Workload: "terasort", Workers: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, ns3Buf bytes.Buffer
	if err := keddah.ExportCSV(&csvBuf, sched); err != nil {
		t.Fatalf("csv: %v", err)
	}
	back, err := keddah.ImportCSV(&csvBuf)
	if err != nil {
		t.Fatalf("import: %v", err)
	}
	if len(back) != len(sched) {
		t.Errorf("csv round trip: %d != %d", len(back), len(sched))
	}
	if err := keddah.ExportNS3(&ns3Buf, sched, 8); err != nil {
		t.Fatalf("ns3: %v", err)
	}
	if ns3Buf.Len() == 0 {
		t.Error("empty ns3 export")
	}
}

func TestPublicModelSerialisation(t *testing.T) {
	ts := capture(t, 5)
	model, err := keddah.Fit(ts, keddah.FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	model2, err := keddah.ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(model2.Jobs) != len(model.Jobs) {
		t.Error("model lost workloads in serialisation")
	}
	var tsBuf bytes.Buffer
	if err := ts.WriteJSON(&tsBuf); err != nil {
		t.Fatal(err)
	}
	ts2, err := keddah.ReadTraceSet(&tsBuf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts2.Runs) != len(ts.Runs) {
		t.Error("trace set lost runs in serialisation")
	}
}
