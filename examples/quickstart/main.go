// Quickstart: capture one terasort run, fit a traffic model, regenerate
// synthetic traffic, and check how well it matches — the whole Keddah
// pipeline in one screen of code.
package main

import (
	"fmt"
	"log"
	"os"

	"keddah"
)

func main() {
	// 1. Capture: run terasort three times on a simulated 16-worker
	// cluster and record every flow.
	cluster := keddah.ClusterSpec{Workers: 16, Seed: 42}
	traces, _, err := keddah.Capture(cluster, []keddah.RunSpec{
		{Profile: "terasort", InputBytes: 2 << 30, JobName: "t0", InputPath: "/data/t"},
		{Profile: "terasort", InputBytes: 2 << 30, JobName: "t1", InputPath: "/data/t"},
		{Profile: "terasort", InputBytes: 2 << 30, JobName: "t2", InputPath: "/data/t"},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d runs\n", len(traces.Runs))

	// 2. Fit: build the empirical per-phase traffic model.
	model, err := keddah.Fit(traces, keddah.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	jm := model.Jobs["terasort"]
	fmt.Printf("terasort moves %.2f bytes per input byte\n", jm.BytesPerInputByte)

	// 3. Generate: synthesise the same three-job load from the model
	// (change InputBytes/Workers/Jobs here to scale the scenario —
	// that's the point of a parameterised model).
	sched, err := model.Generate(keddah.GenSpec{
		Workload: "terasort",
		Workers:  16,
		Jobs:     3,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d synthetic flows\n", len(sched))

	// 4. Replay + validate against the measured corpus.
	generated, makespan, err := keddah.Replay(sched, cluster)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay makespan: %.1fs\n", float64(makespan)/1e9)

	var measured []keddah.FlowRecord
	for _, r := range traces.Runs {
		measured = append(measured, r.Records...)
	}
	v := keddah.Validate("terasort", measured, generated)
	if err := v.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
