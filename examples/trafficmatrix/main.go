// Trafficmatrix: build the rack-to-rack traffic matrix a datacenter
// operator cares about, from a benchmark job mix running on a k=4
// fat-tree. It captures the mix, then aggregates measured flow bytes by
// (source rack, destination rack) — the hot-spot view that motivates
// Hadoop-aware network designs.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"keddah"
	"keddah/internal/core"
	"keddah/internal/netsim"
	"keddah/internal/pcap"
)

func main() {
	spec := core.ClusterSpec{Topology: "fattree", FatTreeK: 4, Seed: 9}
	topo, err := spec.BuildTopology()
	if err != nil {
		log.Fatal(err)
	}
	hosts := topo.Hosts()
	fmt.Printf("fat-tree k=4: %d hosts, %d racks\n", len(hosts), len(hosts)/2)

	traces, results, err := keddah.Capture(spec, []keddah.RunSpec{
		{Profile: "terasort", InputBytes: 2 << 30},
		{Profile: "wordcount", InputBytes: 2 << 30},
		{Profile: "pagerank", InputBytes: 1 << 30},
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, rr := range results {
		fmt.Printf("  %-12s %d rounds, %.1fs total\n",
			rr.Spec.Profile, len(rr.Rounds), float64(rr.TotalDuration())/1e9)
	}

	// Rack of a captured address: capture addresses encode the
	// simulator node id (see pcap.HostAddr).
	rackOf := func(a pcap.Addr) int {
		idx := a.HostIndex()
		if idx < 0 || idx >= topo.NumNodes() {
			return -1
		}
		return topo.Rack(netsim.NodeID(idx))
	}

	// Aggregate all measured flows (jobs + background) by rack pair.
	nRacks := 0
	for _, h := range hosts {
		if topo.Rack(h) >= nRacks {
			nRacks = topo.Rack(h) + 1
		}
	}
	matrix := make([][]int64, nRacks)
	for i := range matrix {
		matrix[i] = make([]int64, nRacks)
	}
	add := func(recs []keddah.FlowRecord) {
		for _, r := range recs {
			src, dst := rackOf(r.Key.Src), rackOf(r.Key.Dst)
			if src >= 0 && dst >= 0 {
				matrix[src][dst] += r.Bytes
			}
		}
	}
	for _, run := range traces.Runs {
		add(run.Records)
	}
	add(traces.Background)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "MB src\\dst")
	for d := 0; d < nRacks; d++ {
		fmt.Fprintf(tw, "\track%d", d)
	}
	fmt.Fprintln(tw)
	var intra, inter int64
	for s := 0; s < nRacks; s++ {
		fmt.Fprintf(tw, "rack%d", s)
		for d := 0; d < nRacks; d++ {
			fmt.Fprintf(tw, "\t%.1f", float64(matrix[s][d])/(1<<20))
			if s == d {
				intra += matrix[s][d]
			} else {
				inter += matrix[s][d]
			}
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	total := intra + inter
	if total > 0 {
		fmt.Printf("intra-rack: %.1f%%  inter-rack: %.1f%% of %.1f GB\n",
			100*float64(intra)/float64(total), 100*float64(inter)/float64(total),
			float64(total)/(1<<30))
	}
}
