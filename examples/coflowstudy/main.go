// Coflowstudy: extract the coflow workload (shuffle-stage structure) a
// coflow scheduler would be evaluated against, straight from captured
// Hadoop traffic — one of the downstream research uses Keddah enables.
//
// It runs a mixed batch of jobs, groups each job's shuffle into a
// coflow, and prints the per-coflow inventory plus population statistics
// (width, size, skew, completion time).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"keddah"
)

func main() {
	traces, _, err := keddah.Capture(keddah.ClusterSpec{Workers: 16, Seed: 21},
		[]keddah.RunSpec{
			{Profile: "terasort", InputBytes: 2 << 30},
			{Profile: "wordcount", InputBytes: 2 << 30},
			{Profile: "join", InputBytes: 1 << 30},
			{Profile: "pagerank", InputBytes: 1 << 30},
		})
	if err != nil {
		log.Fatal(err)
	}

	var records []keddah.FlowRecord
	for _, r := range traces.Runs {
		records = append(records, r.Records...)
	}
	coflows := keddah.Coflows(records)
	fmt.Printf("extracted %d coflows from %d jobs\n", len(coflows), len(traces.Runs))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "job\twidth\tMB\tlongest MB\tskew\tsenders\treceivers\tCCT s")
	for _, c := range coflows {
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%.1f\t%.2f\t%d\t%d\t%.2f\n",
			c.Job, c.Width, float64(c.Bytes)/(1<<20), float64(c.LongestFlowBytes)/(1<<20),
			c.Skew, c.Senders, c.Receivers, c.DurationSeconds())
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	pop, err := keddah.DescribeCoflows(coflows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npopulation (%d coflows):\n", pop.Count)
	fmt.Printf("  width:  median %.0f, p90 %.0f\n", pop.Width.P50, pop.Width.P90)
	fmt.Printf("  size:   median %.1f MB, p90 %.1f MB\n", pop.Bytes.P50/(1<<20), pop.Bytes.P90/(1<<20))
	fmt.Printf("  skew:   median %.2f, max %.2f\n", pop.Skew.P50, pop.Skew.Max)
	fmt.Printf("  CCT:    median %.2f s, p90 %.2f s\n", pop.Duration.P50, pop.Duration.P90)
}
