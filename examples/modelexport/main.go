// Modelexport: build the full Keddah model library — every built-in
// benchmark workload measured five times and fitted — and export it as
// models.json for use by other tools (keddah-gen, external simulators).
package main

import (
	"fmt"
	"log"
	"os"

	"keddah"
)

func main() {
	out := "models.json"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}

	var runs []keddah.RunSpec
	for _, prof := range keddah.Workloads() {
		for i := 0; i < 5; i++ {
			// Jitter input sizes so count scaling sees variation.
			size := int64(float64(1<<31) * (0.8 + 0.1*float64(i)))
			runs = append(runs, keddah.RunSpec{
				Profile:    prof,
				InputBytes: size,
				JobName:    fmt.Sprintf("%s-%d", prof, i),
				InputPath:  fmt.Sprintf("/data/%s-%d", prof, i),
			})
		}
	}
	fmt.Printf("capturing %d runs across %d workloads...\n", len(runs), len(keddah.Workloads()))
	traces, _, err := keddah.Capture(keddah.ClusterSpec{Workers: 16, Seed: 1}, runs)
	if err != nil {
		log.Fatal(err)
	}

	model, err := keddah.Fit(traces, keddah.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range model.WorkloadNames() {
		jm := model.Jobs[name]
		fmt.Printf("  %-10s %d runs, %.2f bytes/input byte, %d phases\n",
			name, jm.RefRuns, jm.BytesPerInputByte, len(jm.Phases))
	}

	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := model.WriteJSON(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s\n", out)
}
