// Whatif: the study the toolchain was built for — fit a Hadoop traffic
// model once, then answer "what happens to my jobs if I cut the rack
// uplink?" entirely in simulation, without touching a cluster.
//
// It fits terasort and wordcount models, generates a mixed four-job
// schedule, and replays it over a two-rack fabric while sweeping the
// uplink from 10 Gbps down to 500 Mbps.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"keddah"
)

func main() {
	// Measure once.
	traces, _, err := keddah.Capture(keddah.ClusterSpec{Workers: 16, Seed: 11},
		[]keddah.RunSpec{
			{Profile: "terasort", InputBytes: 2 << 30, JobName: "t0", InputPath: "/data/t"},
			{Profile: "terasort", InputBytes: 2 << 30, JobName: "t1", InputPath: "/data/t"},
			{Profile: "wordcount", InputBytes: 2 << 30, JobName: "w0", InputPath: "/data/w"},
			{Profile: "wordcount", InputBytes: 2 << 30, JobName: "w1", InputPath: "/data/w"},
		})
	if err != nil {
		log.Fatal(err)
	}
	model, err := keddah.Fit(traces, keddah.FitOptions{})
	if err != nil {
		log.Fatal(err)
	}

	// One mixed schedule: two overlapping terasorts + two wordcounts.
	var sched []keddah.SynthFlow
	for _, wl := range []string{"terasort", "wordcount"} {
		part, err := model.Generate(keddah.GenSpec{
			Workload: wl, Workers: 16, Jobs: 2, Stagger: 0.5, Seed: 3,
		})
		if err != nil {
			log.Fatal(err)
		}
		sched = append(sched, part...)
	}
	fmt.Printf("mixed schedule: %d flows\n", len(sched))

	// Sweep the uplink.
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "uplink Gbps\tmakespan s\tshuffle MB\tmean shuffle flow s")
	for _, uplink := range []float64{10, 4, 2, 1, 0.5} {
		recs, makespan, err := keddah.Replay(sched, keddah.ClusterSpec{
			Topology:   "multirack",
			Workers:    16,
			Racks:      2,
			UplinkGbps: uplink,
			Seed:       3,
		})
		if err != nil {
			log.Fatal(err)
		}
		var shuffleBytes int64
		var durSum float64
		var n int
		for _, r := range recs {
			if r.Key.SrcPort == 13562 || r.Key.DstPort == 13562 {
				shuffleBytes += r.Bytes
				durSum += float64(r.DurationNs()) / 1e9
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = durSum / float64(n)
		}
		fmt.Fprintf(tw, "%.1f\t%.1f\t%.1f\t%.3f\n",
			uplink, float64(makespan)/1e9, float64(shuffleBytes)/(1<<20), mean)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
}
